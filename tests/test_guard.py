"""Tests for :mod:`repro.guard`: watchdog, invariant guards, and
mid-run checkpoint/restore.

The headline property — snapshot at a checkpoint boundary, kill,
restore, run to the end, and land bit-identical to an uninterrupted run
— reuses the same differential comparison as the fast-path equivalence
suite (:func:`repro.check.shadow._compare_results` with an *empty*
ignore set).
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.check.shadow import TICK_OBSERVER_COUNTERS, _compare_results
from repro.errors import (
    CheckpointCorruption,
    CheckpointError,
    ConfigError,
    CycleBudgetExceeded,
    InvariantViolation,
    SimulationInterrupted,
    SimulationStall,
)
from repro.eval.harness import EvaluationHarness
from repro.guard import (
    GuardConfig,
    InvariantSaboteur,
    PROGRESS_IGNORED_COUNTERS,
    ProgressWatchdog,
    SimulationGuard,
    StallSaboteur,
    checkpoint_name,
    find_resumable,
    list_checkpoints,
    progress_signature,
    read_checkpoint,
    write_checkpoint,
)
from repro.resilience.chaos import ChaosPlan
from repro.resilience.supervisor import Task
from repro.sim.engine import ClockedModule, Engine, EngineChecker
from repro.simulators.accel_like import AccelSimLike
from repro.simulators.parallel import _guarded_task, _simulate_one_guarded
from repro.simulators.swift_basic import SwiftSimBasic
from repro.simulators.swift_memory import SwiftSimMemory
from repro.tracegen.suites import make_app

from conftest import make_tiny_gpu

SIMULATORS = (AccelSimLike, SwiftSimBasic, SwiftSimMemory)
NOTHING_IGNORED = frozenset()


def _guarded_run(simulator_cls, app, guard_config, auto_resume=False):
    gpu = make_tiny_gpu()
    simulator = simulator_cls(gpu)
    guard = SimulationGuard(
        guard_config,
        app_name=app.name,
        simulator_name=simulator.name,
        gpu_config=gpu,
        auto_resume=auto_resume,
    )
    return simulator.simulate(app, guard=guard), guard


def _assert_identical(subject, primary, shadow):
    findings = _compare_results(subject, primary, shadow,
                                ignore_counters=NOTHING_IGNORED)
    assert not findings, "\n".join(f.message for f in findings)


class _Worker(ClockedModule):
    """Ticks for ``work`` cycles, bumping a progress counter each time."""

    component = "test_worker"

    def __init__(self, work, name="worker"):
        super().__init__(name)
        self.work = work

    def tick(self, cycle):
        if cycle >= self.work:
            return None
        self.counters.add("units_done")
        return cycle + 1

    def is_done(self):
        return True


class _Recorder(EngineChecker):
    def __init__(self):
        self.cycle_starts = []
        self.ticks = []

    def on_cycle_start(self, cycle):
        self.cycle_starts.append(cycle)

    def on_tick(self, module, cycle, rank):
        self.ticks.append((cycle, module.name))


# ---------------------------------------------------------------------------
# checkpoint/restore determinism (the tentpole contract)


class TestCheckpointResumeDeterminism:
    @pytest.mark.parametrize("simulator_cls", SIMULATORS,
                             ids=lambda cls: cls.__name__)
    def test_kill_and_resume_bit_identical(self, simulator_cls, tmp_path):
        """Interrupt at the first checkpoint, resume, finish identical."""
        app = make_app("gemm", scale="tiny")
        baseline = simulator_cls(make_tiny_gpu()).simulate(app)
        template = GuardConfig(checkpoint_every=500,
                               checkpoint_dir=str(tmp_path))
        with pytest.raises(SimulationInterrupted) as exc_info:
            _guarded_run(simulator_cls, app,
                         template.with_(stop_after_checkpoints=1))
        assert os.path.exists(exc_info.value.checkpoint_path)
        resumed, guard = _guarded_run(simulator_cls, app, template,
                                      auto_resume=True)
        _assert_identical(
            f"{simulator_cls.__name__} resume", baseline, resumed,
        )

    @settings(max_examples=4, deadline=None)
    @given(every=st.integers(min_value=64, max_value=1200))
    def test_resume_determinism_any_checkpoint_cycle(self, every, tmp_path_factory):
        """Property: wherever the checkpoint lands, resume is exact."""
        tmp_path = tmp_path_factory.mktemp("ckpt")
        app = make_app("bfs", scale="tiny")
        baseline = SwiftSimMemory(make_tiny_gpu()).simulate(app)
        template = GuardConfig(checkpoint_every=every,
                               checkpoint_dir=str(tmp_path))
        with pytest.raises(SimulationInterrupted):
            _guarded_run(SwiftSimMemory, app,
                         template.with_(stop_after_checkpoints=1))
        resumed, __ = _guarded_run(SwiftSimMemory, app, template,
                                   auto_resume=True)
        _assert_identical(f"resume@{every}", baseline, resumed)

    def test_resume_without_checkpoint_runs_fresh(self, tmp_path):
        app = make_app("gemm", scale="tiny")
        baseline = SwiftSimBasic(make_tiny_gpu()).simulate(app)
        template = GuardConfig(checkpoint_every=500,
                               checkpoint_dir=str(tmp_path))
        resumed, __ = _guarded_run(SwiftSimBasic, app, template,
                                   auto_resume=True)
        _assert_identical("fresh-under-resume", baseline, resumed)

    def test_guarded_run_bit_identical_to_unguarded(self, tmp_path):
        """Watchdog + invariants + checkpointer must not perturb."""
        app = make_app("sm", scale="tiny")
        baseline = SwiftSimMemory(make_tiny_gpu()).simulate(app)
        guarded, guard = _guarded_run(
            SwiftSimMemory, app,
            GuardConfig(watchdog=True, invariants=True, check_every=64,
                        checkpoint_every=400, checkpoint_dir=str(tmp_path)),
        )
        assert guard.checkpoints_written > 0
        _assert_identical("guard-transparency", baseline, guarded)

    def test_resume_rejects_foreign_checkpoint(self, tmp_path):
        """A bfs run must not silently resume from a gemm checkpoint."""
        app = make_app("gemm", scale="tiny")
        template = GuardConfig(checkpoint_every=500,
                               checkpoint_dir=str(tmp_path))
        with pytest.raises(SimulationInterrupted):
            _guarded_run(SwiftSimBasic, app,
                         template.with_(stop_after_checkpoints=1))
        gpu = make_tiny_gpu()
        simulator = SwiftSimBasic(gpu)
        guard = SimulationGuard(template, app_name="bfs",
                                simulator_name=simulator.name,
                                gpu_config=gpu, auto_resume=True)
        with pytest.raises(CheckpointError, match="written by"):
            guard.load_resume()


class TestTornCheckpoints:
    def _write(self, directory, cycle=500, payload=None, meta=None):
        return write_checkpoint(
            directory, cycle,
            payload if payload is not None else {"value": list(range(8))},
            meta if meta is not None else {"app": "gemm"},
        )

    def test_round_trip(self, tmp_path):
        path = self._write(tmp_path, cycle=500)
        meta, payload = read_checkpoint(path)
        assert meta["cycle"] == 500
        assert payload == {"value": list(range(8))}
        assert path.name == checkpoint_name(500)

    def test_truncated_checkpoint_is_corrupt(self, tmp_path):
        path = self._write(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointCorruption):
            read_checkpoint(path)

    def test_bit_flipped_payload_is_corrupt(self, tmp_path):
        path = self._write(tmp_path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointCorruption, match="digest|torn"):
            read_checkpoint(path)

    def test_find_resumable_skips_torn_newest(self, tmp_path):
        """Torn newest checkpoint falls back to the older intact one —
        the same newest-intact-wins policy as the run journal."""
        self._write(tmp_path, cycle=500, meta={"app": "gemm", "n": 1})
        newest = self._write(tmp_path, cycle=1000, meta={"app": "gemm", "n": 2})
        newest.write_bytes(newest.read_bytes()[:40])
        found = find_resumable(tmp_path)
        assert found is not None
        path, meta, __ = found
        assert meta["cycle"] == 500

    def test_find_resumable_empty_when_all_torn(self, tmp_path):
        path = self._write(tmp_path)
        path.write_bytes(b"REPROCKPT1\ngarbage")
        assert find_resumable(tmp_path) is None

    def test_prune_keeps_newest(self, tmp_path):
        for cycle in (100, 200, 300, 400):
            self._write(tmp_path, cycle=cycle)
        template = GuardConfig(checkpoint_every=100,
                               checkpoint_dir=str(tmp_path),
                               keep_checkpoints=2)
        from repro.guard import prune_checkpoints

        prune_checkpoints(tmp_path, template.keep_checkpoints)
        remaining = [p.name for p in list_checkpoints(tmp_path)]
        assert remaining == [checkpoint_name(300), checkpoint_name(400)]

    def test_torn_checkpoint_degrades_to_fresh_run(self, tmp_path):
        app = make_app("gemm", scale="tiny")
        baseline = SwiftSimBasic(make_tiny_gpu()).simulate(app)
        template = GuardConfig(checkpoint_every=500,
                               checkpoint_dir=str(tmp_path),
                               keep_checkpoints=1)
        with pytest.raises(SimulationInterrupted):
            _guarded_run(SwiftSimBasic, app,
                         template.with_(stop_after_checkpoints=1))
        (only,) = list_checkpoints(tmp_path)
        only.write_bytes(only.read_bytes()[:64])
        resumed, __ = _guarded_run(SwiftSimBasic, app, template,
                                   auto_resume=True)
        _assert_identical("torn-fallback", baseline, resumed)


# ---------------------------------------------------------------------------
# watchdog


class TestWatchdog:
    def test_stall_saboteur_detected_and_named(self, tmp_path):
        app = make_app("gemm", scale="tiny")
        with pytest.raises(SimulationStall) as exc_info:
            _guarded_run(
                SwiftSimBasic, app,
                GuardConfig(watchdog=True, stall_window=1500, check_every=64,
                            bundle_dir=str(tmp_path), inject=("stall",)),
            )
        exc = exc_info.value
        assert "stall_saboteur" in exc.diagnosis["suspects"]
        assert exc.bundle_path
        assert "forensic bundle" in str(exc)

    def test_forensic_bundle_contents(self, tmp_path):
        app = make_app("gemm", scale="tiny")
        gpu = make_tiny_gpu()
        simulator = SwiftSimBasic(gpu)
        guard = SimulationGuard(
            GuardConfig(watchdog=True, stall_window=1500, check_every=64,
                        bundle_dir=str(tmp_path), inject=("stall",)),
            app_name=app.name, simulator_name=simulator.name, gpu_config=gpu,
        )
        with pytest.raises(SimulationStall):
            simulator.simulate(app, guard=guard)
        (bundle,) = guard.bundles
        manifest = json.loads((bundle / "manifest.json").read_text())
        assert manifest["kind"] == "stall"
        assert manifest["run"]["app"] == app.name
        assert manifest["run"]["config_hash"]
        modules = json.loads((bundle / "modules.json").read_text())
        names = {entry["name"] for entry in modules}
        assert "stall_saboteur" in names
        for entry in modules:
            assert "counters" in entry and "state" in entry
        trace_lines = (bundle / "trace_window.jsonl").read_text().splitlines()
        assert 0 < len(trace_lines) <= 64
        last = json.loads(trace_lines[-1])
        assert last["module"] == "stall_saboteur"

    def test_watchdog_tolerates_idle_jump_gaps(self):
        """A jump-clocked engine skipping a quiet region is not a stall."""
        engine = Engine(allow_jump=True)
        worker = _Worker(work=40)
        engine.add(worker)
        late = _Worker(work=50_100, name="late")
        late.tick = lambda cycle: (None if cycle >= 50_100
                                   else (50_000 if cycle < 50_000
                                         else (late.counters.add("units_done")
                                               or cycle + 1)))
        engine.add(late)
        watchdog = ProgressWatchdog(engine, stall_window=1_000,
                                    check_every=64)
        engine.attach_checker(watchdog)
        final = engine.run(max_cycles=100_000)
        assert final >= 50_000  # jumped the gap without a false stall

    def test_progress_signature_ignores_tick_observers(self):
        engine = Engine()
        worker = _Worker(work=4)
        engine.add(worker)
        engine.run(max_cycles=100)
        before = progress_signature(engine)
        worker.counters.add("idle_cycles", 1000)
        assert progress_signature(engine) == before
        worker.counters.add("units_done")
        assert progress_signature(engine) == before + 1

    def test_ignored_counters_in_sync_with_shadow_pillar(self):
        """The guard's textual copy must match repro.check's set (the
        guard cannot import it — layering — so a test enforces sync)."""
        assert PROGRESS_IGNORED_COUNTERS == TICK_OBSERVER_COUNTERS


# ---------------------------------------------------------------------------
# invariant guards


class TestInvariantGuard:
    def test_violation_saboteur_detected(self, tmp_path):
        app = make_app("gemm", scale="tiny")
        with pytest.raises(InvariantViolation) as exc_info:
            _guarded_run(
                SwiftSimBasic, app,
                GuardConfig(invariants=True, check_every=64,
                            bundle_dir=str(tmp_path), inject=("violation",)),
            )
        exc = exc_info.value
        assert exc.module_name == "invariant_saboteur"
        assert exc.bundle_path
        manifest = json.loads(
            (list(tmp_path.iterdir())[0] / "manifest.json").read_text()
        )
        assert manifest["kind"] == "invariant"
        assert manifest["diagnosis"]["module"] == "invariant_saboteur"

    def test_clean_modules_raise_nothing(self):
        """Real simulator invariants hold on an ordinary run."""
        app = make_app("bfs", scale="tiny")
        result, guard = _guarded_run(
            SwiftSimMemory, app,
            GuardConfig(invariants=True, check_every=64),
        )
        assert result.total_cycles > 0
        assert not guard.bundles

    def test_module_invariants_default_empty(self):
        assert _Worker(work=1).invariants(0) == []

    def test_saboteur_invariant_message(self):
        saboteur = InvariantSaboteur(activate_at=0, capacity=4)
        saboteur.tick(0)
        messages = saboteur.invariants(1)
        assert messages and "capacity" in messages[0]


# ---------------------------------------------------------------------------
# engine: cycle budget + on_cycle_start hook


class TestEngineGuardHooks:
    def _wedged_engine(self):
        engine = Engine()
        engine.add(StallSaboteur(activate_at=0))
        return engine

    def test_fast_loop_raises_cycle_budget(self):
        engine = self._wedged_engine()
        with pytest.raises(CycleBudgetExceeded) as exc_info:
            engine.run(max_cycles=200)
        exc = exc_info.value
        assert exc.budget == 200
        assert exc.cycle > 200
        assert exc.module_name == "stall_saboteur"

    def test_checked_loop_raises_cycle_budget(self):
        engine = self._wedged_engine()
        engine.attach_checker(_Recorder())
        with pytest.raises(CycleBudgetExceeded) as exc_info:
            engine.run(max_cycles=200)
        assert exc_info.value.module_name == "stall_saboteur"

    def test_on_cycle_start_fires_once_per_cycle_boundary(self):
        engine = Engine()
        engine.add(_Worker(work=10))
        recorder = _Recorder()
        engine.attach_checker(recorder)
        engine.run(max_cycles=1000)
        starts = recorder.cycle_starts
        assert starts == sorted(set(starts)), "strictly increasing, no dups"
        # Every ticked cycle after the first was announced before its ticks.
        ticked_cycles = sorted({cycle for cycle, __ in recorder.ticks})
        assert set(ticked_cycles[1:]) <= set(starts)


# ---------------------------------------------------------------------------
# harness + supervisor wiring


class TestHarnessIntegration:
    def test_stall_lands_as_failure_record(self):
        harness = EvaluationHarness(make_tiny_gpu(), scale="tiny",
                                    apps=["gemm"])
        suite = harness.evaluate(
            {"swift-basic": SwiftSimBasic(make_tiny_gpu())},
            failure_policy="degrade",
            guard=GuardConfig(watchdog=True, stall_window=1500,
                              check_every=64, inject=("stall",)),
        )
        assert suite.is_partial
        (failure,) = suite.failures
        assert failure.error_type == "SimulationStall"
        assert failure.simulator == "swift-basic"

    def test_cycle_budget_lands_as_failure_record(self):
        class _BudgetBlower(SwiftSimBasic):
            def simulate(self, app, **kwargs):
                raise CycleBudgetExceeded(100, 101, "sm0")

        harness = EvaluationHarness(make_tiny_gpu(), scale="tiny",
                                    apps=["gemm"])
        suite = harness.evaluate(
            {"blower": _BudgetBlower(make_tiny_gpu())},
            failure_policy="degrade",
        )
        (failure,) = suite.failures
        assert failure.error_type == "CycleBudgetExceeded"
        assert "exceeded" in failure.message or "budget" in failure.message

    def test_harness_guarded_resume_matches_clean(self, tmp_path):
        """An interrupted harness pair resumes mid-kernel on re-evaluate."""
        gpu = make_tiny_gpu()
        clean = EvaluationHarness(gpu, scale="tiny", apps=["gemm"]).evaluate(
            {"swift-basic": SwiftSimBasic(gpu)},
        )
        template = GuardConfig(checkpoint_every=500,
                               checkpoint_dir=str(tmp_path))
        harness = EvaluationHarness(gpu, scale="tiny", apps=["gemm"])
        first = harness.evaluate(
            {"swift-basic": SwiftSimBasic(gpu)},
            failure_policy="degrade",
            guard=template.with_(stop_after_checkpoints=1),
        )
        assert first.is_partial
        assert first.failures[0].error_type == "SimulationInterrupted"
        second = harness.evaluate(
            {"swift-basic": SwiftSimBasic(gpu)},
            failure_policy="degrade",
            guard=template,
        )
        assert not second.failures
        assert (second.rows[0].cycles["swift-basic"]
                == clean.rows[0].cycles["swift-basic"])


class TestSupervisorWiring:
    def test_task_attempt_args_default_is_static(self):
        task = Task(key="t", fn=len, args=("abc",))
        assert task.attempt_args(1) == ("abc",)
        assert task.attempt_args(3) == ("abc",)

    def test_guarded_task_flips_resume_on_retry(self, tmp_path):
        app = make_app("gemm", scale="tiny")
        simulator = SwiftSimBasic(make_tiny_gpu())
        template = GuardConfig(checkpoint_every=500,
                               checkpoint_dir=str(tmp_path))
        task = _guarded_task(simulator, app, template, chaos=None)
        first = task.attempt_args(1)
        retry = task.attempt_args(2)
        assert first[-1] is False and retry[-1] is True
        # Per-run checkpoint dir is nested per (app, simulator).
        assert first[-2].checkpoint_dir.endswith(
            f"{app.name}_{simulator.name}"
        )

    def test_guarded_task_applies_chaos_sim_faults(self, tmp_path):
        app = make_app("gemm", scale="tiny")
        simulator = SwiftSimBasic(make_tiny_gpu())
        template = GuardConfig(checkpoint_every=500,
                               checkpoint_dir=str(tmp_path))
        chaos = ChaosPlan(seed=7, stall_rate=1.0)
        task = _guarded_task(simulator, app, template, chaos=chaos)
        cfg = task.attempt_args(1)[-2]
        assert cfg.inject == ("stall",)

    def test_worker_entry_resumes_from_checkpoint(self, tmp_path):
        """The exact function shipped to worker processes resumes."""
        app = make_app("gemm", scale="tiny")
        gpu = make_tiny_gpu()
        baseline = SwiftSimBasic(gpu).simulate(app, gather_metrics=False)
        template = GuardConfig(checkpoint_every=500,
                               checkpoint_dir=str(tmp_path))
        base = (SwiftSimBasic, gpu, SwiftSimBasic.plan, "cache_sim", app)
        with pytest.raises(SimulationInterrupted):
            _simulate_one_guarded(
                *base, template.with_(stop_after_checkpoints=1), False,
            )
        resumed = _simulate_one_guarded(*base, template, True)
        assert resumed.total_cycles == baseline.total_cycles


# ---------------------------------------------------------------------------
# config + chaos plan


class TestGuardConfig:
    def test_inactive_by_default(self):
        assert not GuardConfig().active

    def test_checkpoint_every_requires_dir(self):
        with pytest.raises(ConfigError):
            GuardConfig(checkpoint_every=100)

    def test_stop_after_requires_checkpointing(self):
        with pytest.raises(ConfigError):
            GuardConfig(stop_after_checkpoints=1)

    def test_unknown_injection_rejected(self):
        with pytest.raises(ConfigError):
            GuardConfig(inject=("meteor",))

    def test_with_replaces(self, tmp_path):
        base = GuardConfig(watchdog=True)
        derived = base.with_(checkpoint_every=100,
                             checkpoint_dir=str(tmp_path))
        assert derived.watchdog and derived.checkpoint_every == 100
        assert base.checkpoint_every == 0


class TestChaosSimFaults:
    def test_decide_sim_deterministic(self):
        plan = ChaosPlan(seed=11, stall_rate=0.5, violation_rate=0.3)
        draws = [plan.decide_sim("bfs", attempt) for attempt in range(1, 9)]
        assert draws == [plan.decide_sim("bfs", a) for a in range(1, 9)]
        assert any(d is not None for d in draws)

    def test_decide_sim_independent_of_process_rates(self):
        quiet = ChaosPlan(seed=11, stall_rate=0.5)
        noisy = ChaosPlan(seed=11, stall_rate=0.5, crash_rate=0.9)
        for attempt in range(1, 9):
            assert (quiet.decide_sim("gemm", attempt)
                    == noisy.decide_sim("gemm", attempt))

    def test_decide_sim_inactive_returns_none(self):
        assert ChaosPlan(seed=11, crash_rate=0.5).decide_sim("bfs") is None

    def test_sim_rates_validated(self):
        with pytest.raises(ConfigError):
            ChaosPlan(stall_rate=0.7, violation_rate=0.5)
