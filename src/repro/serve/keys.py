"""Content-addressed identity for sweep jobs.

A job is identified by ``(trace_hash, config_hash, simulator)`` — hash
the *content*, not the invocation, so two clients asking the same
question share one cache entry and one in-flight execution.  Soundness
rests on the determinism contract (``docs/verification.md``): equal
hashes imply bit-identical results.

Hashing goes through :func:`canonical_json`, which fixes the two ways
semantically-equal configs diverge textually:

* **dict ordering** — keys are sorted at every nesting level;
* **float formatting** — floats with integral values collapse to ints
  (``2.0`` and ``2`` hash alike; non-integral floats use Python's
  shortest ``repr``, so ``0.1`` and ``0.10`` already agree after
  parsing).  NaN and infinities are rejected: they cannot round-trip
  JSON and never appear in a valid config.

The property suite (``tests/test_serve_properties.py``) holds these
invariants under Hypothesis: key order and float spelling never change
a hash; materially distinct configs never collide on canonical form.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Iterable

from repro.errors import ServeError
from repro.frontend.config import GPUConfig
from repro.frontend.config_io import gpu_config_to_dict
from repro.frontend.trace import ApplicationTrace


def canonical(value):
    """Recursively normalize ``value`` for hashing (see module doc)."""
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            raise ServeError(
                f"cannot canonicalize non-finite float {value!r}"
            )
        if value.is_integer():
            return int(value)
        return value
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise ServeError(
                    f"cannot canonicalize non-string dict key {key!r}"
                )
        return {key: canonical(value[key]) for key in sorted(value)}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    raise ServeError(
        f"cannot canonicalize value of type {type(value).__name__}"
    )


def canonical_json(value) -> str:
    """The canonical wire/hash form: sorted keys, compact separators."""
    return json.dumps(
        canonical(value), sort_keys=True, separators=(",", ":"),
        allow_nan=False,
    )


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def config_hash(config) -> str:
    """sha256 of a GPU configuration (accepts ``GPUConfig`` or the
    ``gpu_config_to_dict`` form)."""
    if isinstance(config, GPUConfig):
        config = gpu_config_to_dict(config)
    return _sha256(canonical_json(config))


def trace_fingerprint(trace: ApplicationTrace) -> dict:
    """A structural digest of an application trace.

    Hashes every dynamic instruction (pc, opcode, masks, addresses)
    per warp, so any change to the workload — not just its shape —
    changes the fingerprint.  Cheap relative to simulating the trace.
    """
    hasher = hashlib.sha256()
    num_instructions = 0
    for kernel in trace.kernels:
        hasher.update(f"K {kernel.name} {kernel.grid_dim}\n".encode("utf-8"))
        for block in kernel.blocks:
            hasher.update(
                f"B {block.block_id} {block.shared_mem_bytes} "
                f"{block.regs_per_thread}\n".encode("utf-8")
            )
            for warp in block.warps:
                for inst in warp.instructions:
                    hasher.update(
                        f"{inst.pc} {inst.opcode} {inst.dest_regs} "
                        f"{inst.src_regs} {inst.active_mask} "
                        f"{inst.addresses}\n".encode("utf-8")
                    )
                    num_instructions += 1
    return {
        "name": trace.name,
        "kernels": len(trace.kernels),
        "instructions": num_instructions,
        "digest": hasher.hexdigest(),
    }


def trace_hash(trace: ApplicationTrace) -> str:
    """sha256 identity of an application trace's full content."""
    return trace_fingerprint(trace)["digest"]


def workload_hash(app_names: Iterable[str], scale: str) -> str:
    """Identity of a sweep's workload *specification* (app set + scale).

    Used by ``repro eval --resume`` to refuse resuming a journal under
    a different workload; cheaper than generating and hashing every
    trace, and sufficient because trace generation is deterministic in
    (app, scale).
    """
    return _sha256(canonical_json({
        "apps": sorted(set(app_names)),
        "scale": str(scale),
    }))


def job_key(trace_hash_hex: str, config_hash_hex: str, simulator: str) -> str:
    """The content address of one job: what the store and the in-flight
    dedupe table key on."""
    return _sha256(canonical_json({
        "trace": trace_hash_hex,
        "config": config_hash_hex,
        "simulator": simulator,
    }))
