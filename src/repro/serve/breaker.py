"""Per-(simulator, config-region) circuit breakers.

A breaker protects the service from pouring work into a combination
that keeps failing (a wedged model, a pathological config region): after
``threshold`` consecutive failures it OPENs and exact execution is
refused — callers fall down the degradation ladder instead of queueing
doomed work.  After ``cooldown`` seconds one HALF_OPEN probe is let
through; its outcome decides between CLOSED (healed) and OPEN (another
full cooldown).

The config *region* is the first two hex digits of the config hash
(256 coarse buckets): fine enough that one poisoned corner of a sweep
grid does not trip the whole simulator, coarse enough that the board
stays small.

The clock is injectable so the state machine is deterministic under
test; the default is ``time.monotonic``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Tuple

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """One breaker: CLOSED → OPEN → HALF_OPEN → (CLOSED | OPEN)."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown <= 0:
            raise ValueError(f"cooldown must be positive, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self.state = CLOSED
        self.consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_in_flight = False

    def allow(self) -> bool:
        """May an exact execution proceed right now?

        In OPEN state, the first call after the cooldown transitions to
        HALF_OPEN and claims the single probe slot; every other caller
        is refused until that probe reports back.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self._clock() - self._opened_at >= self.cooldown:
                self.state = HALF_OPEN
                self._probe_in_flight = True
                return True
            return False
        # HALF_OPEN: exactly one probe at a time.
        if not self._probe_in_flight:
            self._probe_in_flight = True
            return True
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self._probe_in_flight = False
        self.state = CLOSED

    def record_failure(self) -> None:
        self._probe_in_flight = False
        if self.state == HALF_OPEN:
            # Failed probe: straight back to OPEN for a fresh cooldown.
            self.state = OPEN
            self._opened_at = self._clock()
            return
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.threshold:
            self.state = OPEN
            self._opened_at = self._clock()


class BreakerBoard:
    """The service's breakers, keyed (simulator, config-region)."""

    #: Hex digits of the config hash that define a region.
    REGION_DIGITS = 2

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}

    @classmethod
    def key_for(cls, simulator: str, config_hash_hex: str) -> Tuple[str, str]:
        return (simulator, config_hash_hex[:cls.REGION_DIGITS])

    def breaker_for(self, simulator: str, config_hash_hex: str) -> CircuitBreaker:
        key = self.key_for(simulator, config_hash_hex)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                threshold=self.threshold, cooldown=self.cooldown,
                clock=self._clock,
            )
            self._breakers[key] = breaker
        return breaker

    def snapshot(self) -> Dict[str, str]:
        """Breaker states for the stats endpoint, keyed ``sim/region``."""
        return {
            f"{simulator}/{region}": breaker.state
            for (simulator, region), breaker in sorted(self._breakers.items())
        }
