"""Experiment A1 (ours) — replacement-policy sensitivity.

The paper's motivation (§II-B) argues simulated caches beat analytical
models because they can evaluate non-LRU policies.  This ablation sweeps
L1 replacement on a cache-sensitive stencil with Swift-Sim-Basic and
checks the simulator actually resolves the policy differences an
analytical LRU-only model cannot express.
"""

import pytest

from repro.simulators.swift_basic import SwiftSimBasic
from repro.tracegen.suites import make_app

POLICIES = ("LRU", "FIFO", "RANDOM")


@pytest.fixture(scope="module")
def sweep(gpu, scale):
    app = make_app("hotspot", scale=scale)
    results = {}
    for policy in POLICIES:
        modified = gpu.with_l1(replacement=policy)
        result = SwiftSimBasic(modified).simulate(app)
        results[policy] = result
    return results


def test_policies_produce_distinct_timings(sweep, benchmark):
    benchmark(lambda: {p: r.total_cycles for p, r in sweep.items()})
    print()
    for policy, result in sweep.items():
        miss = result.metrics.l1_miss_rate()
        print(f"  L1 {policy:6s}: {result.total_cycles:8d} cycles, "
              f"L1 miss {100 * miss:.2f}%")
    cycles = {policy: r.total_cycles for policy, r in sweep.items()}
    assert len(set(cycles.values())) >= 2, cycles


def test_miss_rates_respond_to_policy(sweep, benchmark):
    benchmark(lambda: {p: r.metrics.l1_miss_rate() for p, r in sweep.items()})
    rates = {policy: r.metrics.l1_miss_rate() for policy, r in sweep.items()}
    assert all(rate is not None for rate in rates.values())
    assert len({round(rate, 4) for rate in rates.values()}) >= 2, rates


def test_policy_effect_is_bounded(sweep, benchmark):
    benchmark(lambda: sorted(r.total_cycles for r in sweep.values()))
    # Sanity: replacement changes timing by percent-level, not 10x.
    cycles = sorted(r.total_cycles for r in sweep.values())
    assert cycles[-1] < 1.5 * cycles[0]
