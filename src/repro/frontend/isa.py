"""A SASS-like trace ISA.

Traces captured with NVBit carry SASS opcodes.  The simulator only needs
to know, per opcode, which execution unit services it, how its base
latency scales, and whether it is a memory / control / synchronization
instruction — that is what :class:`OpcodeInfo` records.

The opcode table below covers the instruction mix emitted by the
synthetic trace generators and is the single source of truth consulted by
every modeling component.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique

from repro.errors import TraceError


@unique
class UnitClass(Enum):
    """Which functional unit executes an instruction (Table II resources)."""

    INT = "int"
    SP = "sp"        # FP32 cores
    DP = "dp"        # FP64 units
    SFU = "sfu"      # special-function units
    TENSOR = "tensor"
    LDST = "ldst"    # load/store units
    BRANCH = "branch"
    SYNC = "sync"    # barriers / membars; handled by the scheduler


@unique
class InstKind(Enum):
    """Behavioural category the scheduler / LD-ST unit dispatches on."""

    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    ATOMIC = "atomic"
    BRANCH = "branch"
    BARRIER = "barrier"
    MEMBAR = "membar"
    EXIT = "exit"


@unique
class MemSpace(Enum):
    """Address space of a memory instruction."""

    NONE = "none"
    GLOBAL = "global"
    LOCAL = "local"
    SHARED = "shared"


@dataclass(frozen=True)
class OpcodeInfo:
    """Static properties of one SASS opcode.

    ``latency_factor`` scales the base latency of the opcode's unit (for
    example transcendental SFU ops are slower than a reciprocal).
    """

    name: str
    unit: UnitClass
    kind: InstKind
    mem_space: MemSpace = MemSpace.NONE
    latency_factor: int = 1

    @property
    def is_memory(self) -> bool:
        """True for loads, stores, and atomics (anything carrying addresses)."""
        return self.kind in (InstKind.LOAD, InstKind.STORE, InstKind.ATOMIC)


def _op(name, unit, kind, mem_space=MemSpace.NONE, latency_factor=1):
    return OpcodeInfo(name, unit, kind, mem_space, latency_factor)


#: The opcode table, keyed by SASS mnemonic.
OPCODES = {
    info.name: info
    for info in (
        # Integer pipeline
        _op("IADD3", UnitClass.INT, InstKind.ALU),
        _op("IMAD", UnitClass.INT, InstKind.ALU),
        _op("ISETP", UnitClass.INT, InstKind.ALU),
        _op("LOP3", UnitClass.INT, InstKind.ALU),
        _op("SHF", UnitClass.INT, InstKind.ALU),
        _op("LEA", UnitClass.INT, InstKind.ALU),
        _op("MOV", UnitClass.INT, InstKind.ALU),
        _op("SEL", UnitClass.INT, InstKind.ALU),
        _op("POPC", UnitClass.INT, InstKind.ALU, latency_factor=2),
        _op("S2R", UnitClass.INT, InstKind.ALU, latency_factor=2),
        # FP32 pipeline
        _op("FADD", UnitClass.SP, InstKind.ALU),
        _op("FMUL", UnitClass.SP, InstKind.ALU),
        _op("FFMA", UnitClass.SP, InstKind.ALU),
        _op("FSETP", UnitClass.SP, InstKind.ALU),
        _op("FSEL", UnitClass.SP, InstKind.ALU),
        # FP64 pipeline
        _op("DADD", UnitClass.DP, InstKind.ALU),
        _op("DMUL", UnitClass.DP, InstKind.ALU),
        _op("DFMA", UnitClass.DP, InstKind.ALU),
        # Special-function units
        _op("MUFU.RCP", UnitClass.SFU, InstKind.ALU),
        _op("MUFU.SQRT", UnitClass.SFU, InstKind.ALU),
        _op("MUFU.EX2", UnitClass.SFU, InstKind.ALU, latency_factor=2),
        _op("MUFU.LG2", UnitClass.SFU, InstKind.ALU, latency_factor=2),
        _op("MUFU.SIN", UnitClass.SFU, InstKind.ALU, latency_factor=2),
        # Tensor cores
        _op("HMMA", UnitClass.TENSOR, InstKind.ALU),
        # Global memory
        _op("LDG", UnitClass.LDST, InstKind.LOAD, MemSpace.GLOBAL),
        _op("STG", UnitClass.LDST, InstKind.STORE, MemSpace.GLOBAL),
        _op("ATOMG", UnitClass.LDST, InstKind.ATOMIC, MemSpace.GLOBAL, 2),
        _op("RED", UnitClass.LDST, InstKind.ATOMIC, MemSpace.GLOBAL, 2),
        # Local memory (spills) — routed through the global hierarchy
        _op("LDL", UnitClass.LDST, InstKind.LOAD, MemSpace.LOCAL),
        _op("STL", UnitClass.LDST, InstKind.STORE, MemSpace.LOCAL),
        # Shared memory
        _op("LDS", UnitClass.LDST, InstKind.LOAD, MemSpace.SHARED),
        _op("STS", UnitClass.LDST, InstKind.STORE, MemSpace.SHARED),
        _op("ATOMS", UnitClass.LDST, InstKind.ATOMIC, MemSpace.SHARED, 2),
        # Control flow
        _op("BRA", UnitClass.BRANCH, InstKind.BRANCH),
        _op("BSSY", UnitClass.BRANCH, InstKind.BRANCH),
        _op("BSYNC", UnitClass.BRANCH, InstKind.BRANCH),
        _op("RET", UnitClass.BRANCH, InstKind.BRANCH),
        # Synchronization
        _op("BAR.SYNC", UnitClass.SYNC, InstKind.BARRIER),
        _op("MEMBAR", UnitClass.SYNC, InstKind.MEMBAR),
        # Termination
        _op("EXIT", UnitClass.SYNC, InstKind.EXIT),
    )
}


def opcode_info(name: str) -> OpcodeInfo:
    """Look up one opcode; raise :class:`TraceError` for unknown mnemonics."""
    try:
        return OPCODES[name]
    except KeyError:
        raise TraceError(f"unknown opcode {name!r}") from None


#: Opcodes grouped by unit, useful for generators and tests.
OPCODES_BY_UNIT = {}
for _info in OPCODES.values():
    OPCODES_BY_UNIT.setdefault(_info.unit, []).append(_info.name)
del _info
