"""In-simulation fault injectors for chaos testing the guard itself.

:class:`repro.resilience.ChaosPlan` exercises the *outer* failure paths
(worker crashes, timeouts, corrupt results).  These modules exercise the
*inner* ones: a :class:`StallSaboteur` wedges the engine so the progress
watchdog must detect it and name the culprit, and an
:class:`InvariantSaboteur` reports a broken conservation property so the
invariant guard must trip and write a forensic bundle.  Both are
ordinary :class:`ClockedModule`\\ s registered with the engine like any
real component — the guard sees them through exactly the code paths a
genuine model bug would take.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.engine import ClockedModule
from repro.sim.module import ModelLevel


class StallSaboteur(ClockedModule):
    """Keeps the engine spinning with zero architectural progress.

    Sleeps until ``activate_at``, then demands a tick every cycle forever
    while never touching a counter.  While real modules are still doing
    work the progress signature keeps moving; once they drain, the engine
    is livelocked on this module alone — the watchdog's flat-signature
    window elapses and the stall diagnosis names the saboteur, exactly as
    it would name a genuinely wedged scheduler or NoC.
    """

    component = "chaos_saboteur"
    level = ModelLevel.CYCLE_ACCURATE

    def __init__(self, activate_at: int = 0,
                 name: Optional[str] = None) -> None:
        super().__init__(name or "stall_saboteur")
        self.activate_at = activate_at

    def tick(self, cycle: int) -> Optional[int]:
        if cycle < self.activate_at:
            return self.activate_at
        return cycle + 1

    def is_done(self) -> bool:
        # Never reached through a normal drain (the module never idles);
        # True keeps post-mortem inspection of a guarded engine clean.
        return True


class InvariantSaboteur(ClockedModule):
    """Reports a broken conservation property from ``activate_at`` on.

    Models an MSHR-style leak: a fake occupancy counter exceeds its fake
    capacity once activated, so :meth:`invariants` returns a violation
    message and the invariant guard's next sweep raises with a forensic
    bundle pointing here.
    """

    component = "chaos_saboteur"
    level = ModelLevel.CYCLE_ACCURATE

    def __init__(self, activate_at: int = 0, capacity: int = 4,
                 name: Optional[str] = None) -> None:
        super().__init__(name or "invariant_saboteur")
        self.activate_at = activate_at
        self.capacity = capacity
        self.occupancy = 0

    def tick(self, cycle: int) -> Optional[int]:
        if cycle < self.activate_at:
            return self.activate_at
        # The "leak": occupancy jumps past capacity and never recovers.
        self.occupancy = self.capacity + 1
        return None

    def invariants(self, cycle: int) -> List[str]:
        if self.occupancy > self.capacity:
            return [
                f"injected leak: occupancy {self.occupancy} exceeds "
                f"capacity {self.capacity}"
            ]
        return []

    def is_done(self) -> bool:
        return True
