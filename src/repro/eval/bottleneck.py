"""Performance-bottleneck analysis from gathered metrics.

The Metrics Gatherer exists so architects can "analyze performance
bottlenecks based on these metrics" (paper §III-C).  This module turns a
:class:`~repro.sim.metrics.MetricsReport` into that analysis: issue
utilization, memory intensity, cache behaviour, DRAM bandwidth pressure,
and a coarse classification of what limits the application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.frontend.config import GPUConfig
from repro.sim.metrics import MetricsReport

#: Classification labels.
COMPUTE_BOUND = "compute-bound"
MEMORY_LATENCY_BOUND = "memory-latency-bound"
MEMORY_BANDWIDTH_BOUND = "memory-bandwidth-bound"
OCCUPANCY_BOUND = "occupancy-bound"
BALANCED = "balanced"


@dataclass(frozen=True)
class BottleneckReport:
    """Derived bottleneck indicators for one simulation."""

    issue_utilization: float       # issued cycles / active scheduler cycles
    memory_intensity: float        # sector transactions per committed instruction
    l1_miss_rate: Optional[float]
    l2_miss_rate: Optional[float]
    dram_bandwidth_utilization: Optional[float]
    stall_fraction: float          # scheduler cycles with candidates but no issue
    idle_fraction: float           # scheduler cycles with no runnable warp
    classification: str

    def render(self) -> str:
        def pct(value: Optional[float]) -> str:
            return "   n/a" if value is None else f"{100 * value:5.1f}%"

        return "\n".join(
            [
                f"bottleneck classification : {self.classification}",
                f"issue utilization         : {pct(self.issue_utilization)}",
                f"stall fraction            : {pct(self.stall_fraction)}",
                f"idle fraction             : {pct(self.idle_fraction)}",
                f"memory intensity          : {self.memory_intensity:.3f} transactions/instr",
                f"L1 miss rate              : {pct(self.l1_miss_rate)}",
                f"L2 miss rate              : {pct(self.l2_miss_rate)}",
                f"DRAM bandwidth utilization: {pct(self.dram_bandwidth_utilization)}",
            ]
        )


def analyze(report: MetricsReport, config: GPUConfig) -> BottleneckReport:
    """Classify what limits the simulated application."""
    committed = report.instructions
    active = report.total("active_cycles") or 1
    stalled = report.total("stalled_cycles", prefix="subcore")
    idle = report.total("idle_cycles", prefix="subcore")
    scheduler_cycles = active * config.sm.sub_cores or 1
    issue_utilization = min(1.0, committed / scheduler_cycles)
    stall_fraction = min(1.0, stalled / scheduler_cycles)
    idle_fraction = min(1.0, idle / scheduler_cycles)

    transactions = report.total("sector_transactions")
    memory_intensity = transactions / committed if committed else 0.0

    l1_miss = report.l1_miss_rate()
    l2_miss = report.l2_miss_rate()

    dram_sectors = report.total("sectors_transferred", prefix="dram")
    dram_utilization: Optional[float] = None
    if report.total_cycles > 0:
        capacity = (
            report.total_cycles
            * config.memory_partitions
            * config.dram.bytes_per_cycle
        )
        if capacity > 0:
            dram_utilization = min(
                1.0, dram_sectors * config.l2.sector_bytes / capacity
            )

    classification = _classify(
        issue_utilization,
        idle_fraction,
        memory_intensity,
        l1_miss,
        dram_utilization,
    )
    return BottleneckReport(
        issue_utilization=issue_utilization,
        memory_intensity=memory_intensity,
        l1_miss_rate=l1_miss,
        l2_miss_rate=l2_miss,
        dram_bandwidth_utilization=dram_utilization,
        stall_fraction=stall_fraction,
        idle_fraction=idle_fraction,
        classification=classification,
    )


def _classify(
    issue_utilization: float,
    idle_fraction: float,
    memory_intensity: float,
    l1_miss: Optional[float],
    dram_utilization: Optional[float],
) -> str:
    memory_heavy = memory_intensity > 0.5 and (l1_miss is None or l1_miss > 0.3)
    if dram_utilization is not None and dram_utilization > 0.5:
        return MEMORY_BANDWIDTH_BOUND
    if memory_heavy and idle_fraction > 0.3:
        return MEMORY_LATENCY_BOUND
    if issue_utilization > 0.5:
        return COMPUTE_BOUND
    if idle_fraction > 0.6:
        return OCCUPANCY_BOUND
    return BALANCED
