"""Generic kernel-body generators.

Each factory returns a :data:`~repro.tracegen.base.WarpGenerator` closure
that fills one warp, parameterized by the knobs that distinguish real
GPU kernels: instruction mix, memory pattern, working-set footprint,
divergence, shared-memory usage, and synchronization.  The named
applications in :mod:`repro.tracegen.suites` are compositions of these
bodies with app-specific parameters.
"""

from __future__ import annotations

from typing import Sequence

from repro.frontend.trace import WARP_SIZE
from repro.tracegen.base import WarpBuilder, divergent_mask, lanes_of
from repro.tracegen.patterns import (
    broadcast_pattern,
    coalesced_pattern,
    partial_row_pattern,
    random_pattern,
    shared_offsets,
    stencil_pattern,
    strided_pattern,
)

_ALL_LANES = list(range(WARP_SIZE))
_FULL = (1 << WARP_SIZE) - 1


def _warp_index(block_id: int, warp_id: int, warps_per_block: int) -> int:
    return block_id * warps_per_block + warp_id


def streaming_body(
    warps_per_block: int,
    iterations: int,
    loads_per_iter: int = 1,
    flops_per_load: int = 4,
    store_every: int = 1,
    opcode: str = "FFMA",
    footprint_elements: int = 1 << 20,
    int_ops_per_iter: int = 2,
):
    """BLAS-1 style streaming: coalesced loads, dependent arithmetic, store.

    Models Polybench ATAX/BICG/MVT and Rodinia BACKPROP-style kernels.
    """

    def generate(builder: WarpBuilder, block_id: int, warp_id: int) -> None:
        gwarp = _warp_index(block_id, warp_id, warps_per_block)
        acc = builder.alu("MOV")
        for i in range(iterations):
            index = gwarp * iterations + i
            builder.alu_chain("IADD3", int_ops_per_iter)
            values = []
            for source in range(loads_per_iter):
                addresses = coalesced_pattern(
                    source, index, _ALL_LANES, wrap_elements=footprint_elements
                )
                values.append(builder.load(addresses))
            for value in values:
                for __ in range(flops_per_load):
                    acc = builder.alu(opcode, (value, acc))
            if store_every and (i + 1) % store_every == 0:
                out = coalesced_pattern(
                    7, index, _ALL_LANES, wrap_elements=footprint_elements
                )
                builder.store(out, acc)

    return generate


def gemm_body(
    warps_per_block: int,
    k_tiles: int,
    inner: int = 8,
    use_shared: bool = True,
    use_tensor: bool = False,
    b_strided: bool = True,
    footprint_elements: int = 1 << 19,
):
    """Tiled matrix multiply: tile loads (B column-strided), shared-memory
    staging with barriers, and an FFMA/HMMA inner product.

    Models Polybench GEMM/2MM/CORR and the GEMM cores of the Tango nets.
    """

    def generate(builder: WarpBuilder, block_id: int, warp_id: int) -> None:
        gwarp = _warp_index(block_id, warp_id, warps_per_block)
        acc = builder.alu("MOV")
        for tile in range(k_tiles):
            index = gwarp * k_tiles + tile
            a_addrs = coalesced_pattern(
                0, index, _ALL_LANES, wrap_elements=footprint_elements
            )
            a_reg = builder.load(a_addrs)
            if b_strided:
                # 384-byte stride: every lane its own line, lines rotating
                # across the four L1 banks (uncoalesced but not bank-camped).
                b_addrs = strided_pattern(
                    1, index, _ALL_LANES, stride_bytes=384,
                    wrap_bytes=footprint_elements * 4,
                )
            else:
                b_addrs = broadcast_pattern(1, index % footprint_elements, _ALL_LANES)
            b_reg = builder.load(b_addrs)
            if use_shared:
                builder.shared_store(shared_offsets(_ALL_LANES), a_reg)
                builder.shared_store(shared_offsets(_ALL_LANES, base_word=WARP_SIZE), b_reg)
                builder.barrier()
                a_reg = builder.shared_load(shared_offsets(_ALL_LANES))
                b_reg = builder.shared_load(shared_offsets(_ALL_LANES, base_word=WARP_SIZE))
            opcode = "HMMA" if use_tensor else "FFMA"
            for __ in range(inner):
                acc = builder.alu(opcode, (a_reg, b_reg, acc))
            if use_shared:
                builder.barrier()
        out = coalesced_pattern(7, gwarp, _ALL_LANES, wrap_elements=footprint_elements)
        builder.store(out, acc)

    return generate


def stencil_body(
    warps_per_block: int,
    rows_per_warp: int,
    width: int = 2048,
    points: Sequence = ((0, 0), (-1, 0), (1, 0), (0, -1), (0, 1)),
    flops_per_point: int = 2,
    region: int = 0,
    out_region: int = 7,
):
    """Grid stencil sweep with neighbour reuse (HOTSPOT, SRAD, ADI, 2DCONV)."""

    def generate(builder: WarpBuilder, block_id: int, warp_id: int) -> None:
        gwarp = _warp_index(block_id, warp_id, warps_per_block)
        rows = width // 32 or 1
        for r in range(rows_per_warp):
            row = (gwarp * rows_per_warp + r) % rows
            col_block = (gwarp + r) % max(1, width // WARP_SIZE)
            acc = builder.alu("MOV")
            builder.alu_chain("IADD3", 2)
            for offset_row, offset_col in points:
                addresses = stencil_pattern(
                    region, row, col_block, _ALL_LANES, width,
                    offset_rows=offset_row, offset_cols=offset_col,
                )
                value = builder.load(addresses)
                for __ in range(flops_per_point):
                    acc = builder.alu("FFMA", (value, acc))
            out = stencil_pattern(out_region, row, col_block, _ALL_LANES, width)
            builder.store(out, acc)

    return generate


def graph_body(
    warps_per_block: int,
    nodes_per_warp: int,
    avg_degree: int,
    footprint_bytes: int,
    atomic_fraction: float = 0.1,
    min_active: int = 4,
    compute_per_edge: int = 2,
):
    """Irregular graph traversal: coalesced frontier reads, divergent
    random neighbour gathers, occasional atomic updates (BFS, SSSP,
    PAGERANK, COLOR, BC)."""

    def generate(builder: WarpBuilder, block_id: int, warp_id: int) -> None:
        gwarp = _warp_index(block_id, warp_id, warps_per_block)
        rng = builder.rng
        for node in range(nodes_per_warp):
            index = gwarp * nodes_per_warp + node
            frontier = coalesced_pattern(0, index, _ALL_LANES)
            node_reg = builder.load(frontier)
            builder.alu("ISETP", (node_reg,))
            builder.branch()
            degree = max(1, round(rng.gauss(avg_degree, avg_degree / 3)))
            for __ in range(degree):
                mask = divergent_mask(rng, min_active=min_active)
                lanes = lanes_of(mask)
                neighbour = random_pattern(1, rng, lanes, footprint_bytes)
                value = builder.load(neighbour, mask=mask)
                builder.alu_chain("IADD3", compute_per_edge, seed_reg=value)
                if rng.random() < atomic_fraction:
                    target = random_pattern(2, rng, lanes, footprint_bytes)
                    builder.atomic(target, value, mask=mask)

    return generate


def reduction_body(
    warps_per_block: int,
    iterations: int,
    tree_levels: int = 5,
    flops_per_element: int = 2,
    footprint_elements: int = 1 << 20,
):
    """Load + shared-memory tree reduction with barriers (kernels inside
    CORR, PAGERANK, KMEANS-style codes)."""

    def generate(builder: WarpBuilder, block_id: int, warp_id: int) -> None:
        gwarp = _warp_index(block_id, warp_id, warps_per_block)
        for i in range(iterations):
            index = gwarp * iterations + i
            addresses = coalesced_pattern(
                0, index, _ALL_LANES, wrap_elements=footprint_elements
            )
            value = builder.load(addresses)
            for __ in range(flops_per_element):
                value = builder.alu("FADD", (value,))
            builder.shared_store(shared_offsets(_ALL_LANES), value)
            builder.barrier()
            for level in range(tree_levels):
                active = max(1, WARP_SIZE >> (level + 1))
                mask = (1 << active) - 1
                lanes = lanes_of(mask)
                partial = builder.shared_load(
                    shared_offsets(lanes, stride_words=1 << level), mask=mask
                )
                value = builder.alu("FADD", (partial, value))
                builder.barrier()
            out = coalesced_pattern(7, index, _ALL_LANES[:1], wrap_elements=1 << 16)
            builder.store(out, value, mask=0x1)

    return generate


def text_body(
    warps_per_block: int,
    iterations: int,
    compares_per_load: int = 6,
    match_fraction: float = 0.15,
    footprint_elements: int = 1 << 22,
):
    """Byte-stream scanning: INT-dominated compares over coalesced loads
    with rare divergent match handling (Mars SM and WC)."""

    def generate(builder: WarpBuilder, block_id: int, warp_id: int) -> None:
        gwarp = _warp_index(block_id, warp_id, warps_per_block)
        rng = builder.rng
        for i in range(iterations):
            index = gwarp * iterations + i
            addresses = coalesced_pattern(
                0, index, _ALL_LANES, wrap_elements=footprint_elements
            )
            data = builder.load(addresses)
            reg = data
            for __ in range(compares_per_load):
                reg = builder.alu("LOP3", (reg,))
                builder.alu("ISETP", (reg,))
            builder.branch()
            if rng.random() < match_fraction:
                mask = divergent_mask(rng, min_active=1, max_active=6)
                lanes = lanes_of(mask)
                out = random_pattern(7, rng, lanes, 1 << 20)
                builder.atomic(out, reg, mask=mask)

    return generate


def dnn_body(
    warps_per_block: int,
    k_tiles: int,
    inner: int = 6,
    activation: str = "MUFU.EX2",
    activations_per_tile: int = 2,
    use_tensor: bool = False,
    weight_elements: int = 1 << 16,
    input_elements: int = 1 << 18,
):
    """DNN layer: weight-stationary GEMM with broadcast weight reuse and
    SFU activations (Tango GRU/LSTM/ALEXNET)."""

    def generate(builder: WarpBuilder, block_id: int, warp_id: int) -> None:
        gwarp = _warp_index(block_id, warp_id, warps_per_block)
        acc = builder.alu("MOV")
        for tile in range(k_tiles):
            index = gwarp * k_tiles + tile
            inputs = coalesced_pattern(0, index, _ALL_LANES, wrap_elements=input_elements)
            in_reg = builder.load(inputs)
            weights = broadcast_pattern(1, index % weight_elements, _ALL_LANES)
            w_reg = builder.load(weights)
            opcode = "HMMA" if use_tensor else "FFMA"
            for __ in range(inner):
                acc = builder.alu(opcode, (in_reg, w_reg, acc))
            for __ in range(activations_per_tile):
                acc = builder.alu(activation, (acc,))
        out = coalesced_pattern(7, gwarp, _ALL_LANES, wrap_elements=input_elements)
        builder.store(out, acc)

    return generate


def triangular_body(
    warps_per_block: int,
    num_blocks: int,
    base_rows: int,
    row_bytes: int = 4096,
    flops_per_row: int = 6,
    use_dp: bool = False,
):
    """Triangular solve / elimination: later blocks do less work, rows are
    touched from their head (LU, GAUSSIAN, NW's wavefront tapering)."""

    def generate(builder: WarpBuilder, block_id: int, warp_id: int) -> None:
        gwarp = _warp_index(block_id, warp_id, warps_per_block)
        # Work tapers with block id: the elimination shrinks.
        taper = 1.0 - 0.75 * (block_id / max(1, num_blocks - 1)) if num_blocks > 1 else 1.0
        rows = max(1, int(base_rows * taper))
        opcode = "DFMA" if use_dp else "FFMA"
        pivot = builder.load(broadcast_pattern(2, block_id, _ALL_LANES))
        builder.alu("MUFU.RCP", (pivot,))
        for r in range(rows):
            row_index = gwarp * base_rows + r
            addresses = partial_row_pattern(0, row_index, _ALL_LANES, row_bytes=row_bytes)
            value = builder.load(addresses)
            acc = value
            for __ in range(flops_per_row):
                acc = builder.alu(opcode, (value, acc))
            builder.store(
                partial_row_pattern(7, row_index, _ALL_LANES, row_bytes=row_bytes), acc
            )

    return generate
