"""In-memory application traces.

An application trace is a list of kernels; a kernel is a grid of thread
blocks; a block is a list of warps; a warp is a list of
:class:`TraceInstruction`.  Traces are architecture-independent
(paper §III-A): the same trace drives any simulated GPU configuration.

:class:`TraceInstruction` is the hot object of the whole simulator — it
uses ``__slots__`` and resolves its :class:`~repro.frontend.isa.OpcodeInfo`
once at construction so modeling code never re-parses mnemonics.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

from repro.errors import TraceError
from repro.frontend.isa import InstKind, MemSpace, UnitClass, opcode_info
from repro.utils.bitops import bit_count, full_mask

#: Threads per warp.
WARP_SIZE = 32

_FULL_WARP_MASK = full_mask(WARP_SIZE)


class TraceInstruction:
    """One dynamic warp instruction.

    ``addresses`` holds one byte address per *active* thread (in ascending
    lane order) for memory instructions, exactly as an NVBit memory trace
    records them; it is empty for non-memory instructions and for
    shared-memory instructions it holds shared-memory offsets.
    """

    __slots__ = (
        "pc", "opcode", "info", "dest_regs", "src_regs", "active_mask",
        "addresses", "kind", "unit", "mem_space", "is_memory",
        "latency_factor", "active_threads",
    )

    def __init__(
        self,
        pc: int,
        opcode: str,
        dest_regs: Sequence[int] = (),
        src_regs: Sequence[int] = (),
        active_mask: int = _FULL_WARP_MASK,
        addresses: Sequence[int] = (),
    ) -> None:
        info = opcode_info(opcode)
        if pc < 0:
            raise TraceError(f"negative PC {pc}")
        if not 0 < active_mask <= _FULL_WARP_MASK:
            raise TraceError(f"active mask {active_mask:#x} out of range at pc {pc:#x}")
        active_threads = bit_count(active_mask)
        if info.is_memory:
            if len(addresses) != active_threads:
                raise TraceError(
                    f"{opcode} at pc {pc:#x}: {len(addresses)} addresses for "
                    f"{active_threads} active threads"
                )
            if any(a < 0 for a in addresses):
                raise TraceError(f"{opcode} at pc {pc:#x}: negative address")
        elif addresses:
            raise TraceError(f"{opcode} at pc {pc:#x} carries addresses but is not memory")
        self.pc = pc
        self.opcode = opcode
        self.info = info
        self.dest_regs = tuple(dest_regs)
        self.src_regs = tuple(src_regs)
        self.active_mask = active_mask
        self.addresses = tuple(addresses)
        # Flattened from ``info`` — these are read millions of times on
        # the simulators' hot paths, where attribute loads beat properties.
        self.kind = info.kind
        self.unit = info.unit
        self.mem_space = info.mem_space
        self.is_memory = info.is_memory
        self.latency_factor = info.latency_factor
        self.active_threads = active_threads

    def __repr__(self) -> str:
        return (
            f"TraceInstruction(pc={self.pc:#x}, opcode={self.opcode!r}, "
            f"dest={self.dest_regs}, src={self.src_regs}, "
            f"mask={self.active_mask:#010x}, n_addr={len(self.addresses)})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceInstruction):
            return NotImplemented
        return (
            self.pc == other.pc
            and self.opcode == other.opcode
            and self.dest_regs == other.dest_regs
            and self.src_regs == other.src_regs
            and self.active_mask == other.active_mask
            and self.addresses == other.addresses
        )

    def __hash__(self) -> int:
        return hash((self.pc, self.opcode, self.dest_regs, self.src_regs, self.active_mask))


class WarpTrace:
    """The dynamic instruction stream of one warp."""

    __slots__ = ("warp_id", "instructions")

    def __init__(self, warp_id: int, instructions: Sequence[TraceInstruction]) -> None:
        if warp_id < 0:
            raise TraceError(f"negative warp id {warp_id}")
        instructions = list(instructions)
        if not instructions:
            raise TraceError(f"warp {warp_id} has no instructions")
        if instructions[-1].kind is not InstKind.EXIT:
            raise TraceError(f"warp {warp_id} does not end with EXIT")
        for position, inst in enumerate(instructions[:-1]):
            if inst.kind is InstKind.EXIT:
                raise TraceError(
                    f"warp {warp_id}: EXIT at position {position} is not last"
                )
        self.warp_id = warp_id
        self.instructions = instructions

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[TraceInstruction]:
        return iter(self.instructions)

    @property
    def barrier_count(self) -> int:
        """Number of BAR.SYNC instructions (must match across a block)."""
        return sum(1 for inst in self.instructions if inst.kind is InstKind.BARRIER)


class BlockTrace:
    """One thread block (CTA): warps plus per-block resource needs."""

    __slots__ = ("block_id", "warps", "shared_mem_bytes", "regs_per_thread")

    def __init__(
        self,
        block_id: int,
        warps: Sequence[WarpTrace],
        shared_mem_bytes: int = 0,
        regs_per_thread: int = 32,
    ) -> None:
        if block_id < 0:
            raise TraceError(f"negative block id {block_id}")
        warps = list(warps)
        if not warps:
            raise TraceError(f"block {block_id} has no warps")
        warp_ids = [w.warp_id for w in warps]
        if warp_ids != list(range(len(warps))):
            raise TraceError(f"block {block_id}: warp ids must be 0..n-1, got {warp_ids}")
        barrier_counts = {w.barrier_count for w in warps}
        if len(barrier_counts) > 1:
            raise TraceError(
                f"block {block_id}: warps disagree on barrier count {sorted(barrier_counts)}"
            )
        if shared_mem_bytes < 0:
            raise TraceError("shared memory cannot be negative")
        if regs_per_thread < 1:
            raise TraceError("regs_per_thread must be >= 1")
        self.block_id = block_id
        self.warps = warps
        self.shared_mem_bytes = shared_mem_bytes
        self.regs_per_thread = regs_per_thread

    def __len__(self) -> int:
        return len(self.warps)

    @property
    def num_threads(self) -> int:
        return len(self.warps) * WARP_SIZE

    @property
    def num_instructions(self) -> int:
        return sum(len(w) for w in self.warps)


class KernelTrace:
    """One kernel launch: a grid of blocks.

    Blocks in real kernels run the same code over different data; here
    each block carries its own concrete warp streams (so data-dependent
    control flow and addresses differ per block, as in an NVBit trace).
    """

    __slots__ = ("name", "blocks", "grid_dim")

    def __init__(
        self,
        name: str,
        blocks: Sequence[BlockTrace],
        grid_dim: Optional[Tuple[int, int, int]] = None,
    ) -> None:
        if not name:
            raise TraceError("kernel needs a name")
        blocks = list(blocks)
        if not blocks:
            raise TraceError(f"kernel {name!r} has no blocks")
        block_ids = [b.block_id for b in blocks]
        if block_ids != list(range(len(blocks))):
            raise TraceError(f"kernel {name!r}: block ids must be 0..n-1")
        if grid_dim is None:
            grid_dim = (len(blocks), 1, 1)
        if grid_dim[0] * grid_dim[1] * grid_dim[2] != len(blocks):
            raise TraceError(
                f"kernel {name!r}: grid_dim {grid_dim} does not cover {len(blocks)} blocks"
            )
        self.name = name
        self.blocks = blocks
        self.grid_dim = grid_dim

    def __len__(self) -> int:
        return len(self.blocks)

    @property
    def num_warps(self) -> int:
        return sum(len(b) for b in self.blocks)

    @property
    def num_instructions(self) -> int:
        return sum(b.num_instructions for b in self.blocks)

    def memory_accesses(self) -> Iterator[TraceInstruction]:
        """Yield every global/local memory instruction in launch order."""
        for block in self.blocks:
            for warp in block.warps:
                for inst in warp.instructions:
                    if inst.is_memory and inst.mem_space is not MemSpace.SHARED:
                        yield inst


class ApplicationTrace:
    """A whole application: an ordered list of kernel launches."""

    # ``__weakref__`` lets memo layers (analytical-profile and trace
    # caches) key on the application without pinning it in memory.
    __slots__ = ("name", "suite", "kernels", "__weakref__")

    def __init__(self, name: str, kernels: Sequence[KernelTrace], suite: str = "") -> None:
        if not name:
            raise TraceError("application needs a name")
        kernels = list(kernels)
        if not kernels:
            raise TraceError(f"application {name!r} has no kernels")
        self.name = name
        self.suite = suite
        self.kernels = kernels

    def __len__(self) -> int:
        return len(self.kernels)

    def __iter__(self) -> Iterator[KernelTrace]:
        return iter(self.kernels)

    @property
    def num_instructions(self) -> int:
        return sum(k.num_instructions for k in self.kernels)


def instruction_mix(trace: ApplicationTrace) -> dict:
    """Count dynamic instructions per :class:`UnitClass` (for reports/tests)."""
    mix: dict = {}
    for kernel in trace.kernels:
        for block in kernel.blocks:
            for warp in block.warps:
                for inst in warp.instructions:
                    mix[inst.unit] = mix.get(inst.unit, 0) + 1
    return mix
