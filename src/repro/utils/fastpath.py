"""Global fast-path flags.

Every performance optimization that changes *how* a result is computed
(as opposed to a pure micro-refactor) lands behind a flag here, so
``tests/test_fastpath_equivalence.py`` can run the same workload with a
flag on and off and demand bit-identical cycles and counters.  The
flags are:

``fast_dispatch``
    :class:`~repro.sim.engine.Engine` uses a tightened dispatch loop
    (hoisted heap locals, inlined rescheduling) when no checker is
    attached.  Per-entry heap semantics are unchanged.
``cache_memo``
    :class:`~repro.memory.cache.SectoredCache` allocates tag-array sets
    lazily on first touch instead of eagerly at construction, and
    :class:`~repro.memory.analytical.MemoryProfile` memoizes
    per-application profiling passes.
``trace_cache``
    :func:`~repro.tracegen.suites.make_app` memoizes generated
    application traces per ``(name, scale)`` so differential runs and
    benchmark sweeps do not re-materialize identical traces.

Flags default to *on*; ``REPRO_FASTPATH=0`` (or ``off``/``false``)
disables all of them for a process.  Tests toggle them with the
:func:`fastpaths` context manager.

This module sits in :mod:`repro.utils` — below ``sim``, ``memory`` and
``tracegen`` in the dependency graph — so hot-path modules can read the
flags without importing :mod:`repro.profile` (which imports them).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator

_DISABLED_VALUES = {"0", "off", "false", "no"}


@dataclass(frozen=True)
class FastPaths:
    """Immutable snapshot of which fast paths are enabled."""

    fast_dispatch: bool = True
    cache_memo: bool = True
    trace_cache: bool = True

    @staticmethod
    def all_on() -> "FastPaths":
        return FastPaths()

    @staticmethod
    def all_off() -> "FastPaths":
        return FastPaths(fast_dispatch=False, cache_memo=False, trace_cache=False)

    def as_dict(self) -> dict:
        return {
            "fast_dispatch": self.fast_dispatch,
            "cache_memo": self.cache_memo,
            "trace_cache": self.trace_cache,
        }


def _default() -> FastPaths:
    raw = os.environ.get("REPRO_FASTPATH", "").strip().lower()
    if raw in _DISABLED_VALUES:
        return FastPaths.all_off()
    return FastPaths.all_on()


_active: FastPaths = _default()


def get_fastpaths() -> FastPaths:
    """The process-wide fast-path flags currently in effect."""
    return _active


def set_fastpaths(flags: FastPaths) -> FastPaths:
    """Replace the active flags; returns the previous snapshot."""
    global _active
    previous = _active
    _active = flags
    return previous


@contextmanager
def fastpaths(**overrides: bool) -> Iterator[FastPaths]:
    """Temporarily override individual flags::

        with fastpaths(fast_dispatch=False):
            result = simulator.simulate(app)
    """
    previous = set_fastpaths(replace(_active, **overrides))
    try:
        yield _active
    finally:
        set_fastpaths(previous)
