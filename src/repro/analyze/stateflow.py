"""State-access dataflow over the clocked surface of every module.

Built on the :class:`~repro.analyze.callgraph.CallGraph`, this computes,
per :class:`~repro.sim.module.Module` subclass:

* **own accesses** — which ``self.<attr>`` state is read and written on
  the class's clocked surface (``tick``, declared ports, callbacks, and
  everything self-call-reachable from them);
* **foreign accesses** — reads and writes of *another module's* state
  through module-typed references (``self.peer.count += 1``, mutator
  calls like ``self.peer.queue.append(...)``, ``getattr(self.src,
  "all_done")``, and property reads, which dispatch to the owner's
  property method).  Each is tagged ``synchronized`` when it goes
  through a ``# repro: port``-marked member — the declared cross-shard
  channels the PDES core will serialize;
* **escapes** — which parameters of a method are *retained* by the
  callee (stored into ``self`` state, pushed into an owned container, or
  captured by a constructed object).  A port call whose argument escapes
  on the far side is a shared mutable object crossing a shard boundary.

The sharding rules (SH family) and the partition manifest are thin
consumers of this structure.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analyze.callgraph import (
    CallGraph,
    ClassModel,
    LocalEnv,
    build_callgraph,
    render_expr,
)
from repro.analyze.index import ProgramIndex

#: Method names that mutate their receiver in place.
MUTATORS = frozenset({
    "append", "appendleft", "extend", "extendleft", "add", "update",
    "insert", "remove", "discard", "pop", "popleft", "popitem", "clear",
    "setdefault", "push", "sort", "reverse",
})


@dataclass(frozen=True)
class StateAccess:
    """One access to a module's *own* state on its clocked surface."""

    cls: str
    method: str
    attr: str
    kind: str            #: "read" | "write"
    path: str
    line: int


@dataclass(frozen=True)
class ForeignAccess:
    """A clocked access to *another* module's state."""

    cls: str             #: accessing class
    method: str
    owners: FrozenSet[str]  #: candidate owning module classes
    attr: str
    kind: str            #: "read" | "write"
    path: str
    line: int
    receiver: str        #: rendered receiver expression
    synchronized: bool   #: True when through a ``# repro: port`` member
    via_property: bool = False


class StateFlow:
    """Per-module state-access graph over the whole program."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.index: ProgramIndex = graph.index
        #: cls -> attr -> own accesses on the clocked surface
        self.own_writes: Dict[str, Dict[str, List[StateAccess]]] = {}
        self.own_reads: Dict[str, Dict[str, List[StateAccess]]] = {}
        #: every clocked foreign access, program-wide
        self.foreign: List[ForeignAccess] = []
        self._escapes: Dict[Tuple[str, str], Set[str]] = {}
        for name in sorted(graph.module_names):
            model = graph.models.get(name)
            if model is not None:
                self._analyze_class(model)

    # ------------------------------------------------------------------
    # queries

    def writes_on_clock(self, cls: str, attr: str) -> bool:
        """Does ``cls`` write ``attr`` (or the state behind a property of
        that name) on its own clocked surface?"""
        writes = self.own_writes.get(cls, {})
        if attr in writes:
            return True
        model = self.graph.models.get(cls)
        if model is None:
            return False
        prop = model.info.methods.get(attr)
        if prop is not None and _is_property(prop):
            # A property read exposes whatever attributes its body reads.
            for node in ast.walk(prop):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in writes
                ):
                    return True
        return False

    def escaping_params(self, cls: str, method: str) -> Set[str]:
        """Parameter names of ``cls.method`` retained past the call."""
        key = (cls, method)
        if key not in self._escapes:
            self._escapes[key] = self._compute_escapes(cls, method)
        return self._escapes[key]

    def module_owners(self, recv_types: FrozenSet[str]) -> Set[str]:
        """Module classes a receiver of ``recv_types`` may be — the
        types themselves plus module subclasses of ABC-typed receivers."""
        owners: Set[str] = set()
        if not recv_types:
            return owners
        for name in self.graph.module_names:
            if name in recv_types:
                owners.add(name)
                continue
            model = self.graph.models.get(name)
            if model is not None and (
                recv_types & self.index.root_names(model.info)
            ):
                owners.add(name)
        return owners

    # ------------------------------------------------------------------
    # per-class analysis

    def _analyze_class(self, model: ClassModel) -> None:
        name = model.name
        self.own_writes.setdefault(name, {})
        self.own_reads.setdefault(name, {})
        for method_name in self.graph.clocked_methods(name):
            method = model.info.methods.get(method_name)
            if method is None:
                continue
            env = self.graph.seed_env(model, method)
            self._analyze_method(model, method_name, method, env)

    def _analyze_method(
        self,
        model: ClassModel,
        method_name: str,
        method: ast.FunctionDef,
        env: LocalEnv,
    ) -> None:
        # Attributes serving as the callee of a call are call edges
        # (callgraph territory), not state reads.
        call_funcs = {
            id(node.func) for node in ast.walk(method)
            if isinstance(node, ast.Call)
        }
        # Attributes being assigned are writes, not reads.
        write_targets: Set[int] = set()
        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    for sub in ast.walk(target):
                        write_targets.add(id(sub))
                    self._record_write_target(model, method_name, target, env)
            if isinstance(node, ast.Call):
                self._record_mutator(model, method_name, node, env)
                self._record_getattr_read(model, method_name, node, env)
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and id(node) not in call_funcs
                and id(node) not in write_targets
            ):
                self._record_read(model, method_name, node, env)

    def _record_write_target(
        self,
        model: ClassModel,
        method_name: str,
        target: ast.expr,
        env: LocalEnv,
    ) -> None:
        if isinstance(target, ast.Tuple):
            for elt in target.elts:
                self._record_write_target(model, method_name, elt, env)
            return
        # Unwrap subscripts: ``self.x[i] = ...`` writes attribute x.
        while isinstance(target, ast.Subscript):
            target = target.value
        if not isinstance(target, ast.Attribute):
            return
        base = target.value
        if isinstance(base, ast.Name) and base.id == "self":
            self._add_own(model, method_name, target.attr, "write", target.lineno)
            return
        owners = self._foreign_owners(base, target.attr, model, env,
                                      want_state=True)
        if owners:
            self.foreign.append(ForeignAccess(
                cls=model.name,
                method=method_name,
                owners=frozenset(owners),
                attr=target.attr,
                kind="write",
                path=model.info.path,
                line=target.lineno,
                receiver=render_expr(base),
                synchronized=False,
            ))

    def _record_mutator(
        self,
        model: ClassModel,
        method_name: str,
        node: ast.Call,
        env: LocalEnv,
    ) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in MUTATORS):
            return
        recv = func.value
        while isinstance(recv, ast.Subscript):
            recv = recv.value
        if not isinstance(recv, ast.Attribute):
            return
        base = recv.value
        if isinstance(base, ast.Name) and base.id == "self":
            self._add_own(model, method_name, recv.attr, "write", node.lineno)
            return
        owners = self._foreign_owners(base, recv.attr, model, env,
                                      want_state=True)
        if owners:
            self.foreign.append(ForeignAccess(
                cls=model.name,
                method=method_name,
                owners=frozenset(owners),
                attr=recv.attr,
                kind="write",
                path=model.info.path,
                line=node.lineno,
                receiver=render_expr(base),
                synchronized=False,
            ))

    def _record_getattr_read(
        self,
        model: ClassModel,
        method_name: str,
        node: ast.Call,
        env: LocalEnv,
    ) -> None:
        if not (isinstance(node.func, ast.Name) and node.func.id == "getattr"
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)):
            return
        attr = node.args[1].value
        self._record_foreign_read(
            model, method_name, node.args[0], attr, node.lineno, env
        )

    def _record_read(
        self,
        model: ClassModel,
        method_name: str,
        node: ast.Attribute,
        env: LocalEnv,
    ) -> None:
        base = node.value
        if isinstance(base, ast.Name) and base.id == "self":
            self._add_own(model, method_name, node.attr, "read", node.lineno)
            return
        self._record_foreign_read(
            model, method_name, base, node.attr, node.lineno, env
        )

    def _record_foreign_read(
        self,
        model: ClassModel,
        method_name: str,
        base: ast.expr,
        attr: str,
        line: int,
        env: LocalEnv,
    ) -> None:
        recv_types = frozenset(
            self.graph.value_types(base, model, env).direct
        )
        owners = self.module_owners(recv_types)
        state_owners: Set[str] = set()
        prop_owners: Set[str] = set()
        synchronized = False
        for owner in owners:
            owner_model = self.graph.models.get(owner)
            if owner_model is None:
                continue
            prop = owner_model.info.methods.get(attr)
            if prop is not None:
                if _is_property(prop):
                    prop_owners.add(owner)
                    if self.index.port_marked(owner_model.info, attr):
                        synchronized = True
                # Plain bound-method reference (callback wiring): the
                # call graph owns it, not the state graph.
                continue
            if self.index.declares(owner_model.info, attr):
                state_owners.add(owner)
        matched = state_owners | prop_owners
        if not matched:
            return
        self.foreign.append(ForeignAccess(
            cls=model.name,
            method=method_name,
            owners=frozenset(matched),
            attr=attr,
            kind="read",
            path=model.info.path,
            line=line,
            receiver=render_expr(base),
            synchronized=synchronized,
            via_property=bool(prop_owners),
        ))

    def _foreign_owners(
        self,
        base: ast.expr,
        attr: str,
        model: ClassModel,
        env: LocalEnv,
        want_state: bool,
    ) -> Set[str]:
        recv_types = frozenset(
            self.graph.value_types(base, model, env).direct
        )
        owners = self.module_owners(recv_types)
        if not want_state:
            return owners
        matched: Set[str] = set()
        for owner in owners:
            owner_model = self.graph.models.get(owner)
            if owner_model is not None and (
                self.index.declares(owner_model.info, attr)
                or attr in owner_model.info.methods
            ):
                matched.add(owner)
        return matched

    def _add_own(
        self, model: ClassModel, method: str, attr: str, kind: str, line: int
    ) -> None:
        store = self.own_writes if kind == "write" else self.own_reads
        store[model.name].setdefault(attr, []).append(StateAccess(
            cls=model.name, method=method, attr=attr, kind=kind,
            path=model.info.path, line=line,
        ))

    # ------------------------------------------------------------------
    # escape analysis

    def _compute_escapes(self, cls: str, method_name: str) -> Set[str]:
        model = self.graph.models.get(cls)
        if model is None:
            return set()
        method = model.info.methods.get(method_name)
        if method is None:
            return set()
        args = method.args
        params = {
            p.arg
            for p in (*args.posonlyargs, *args.args, *args.kwonlyargs)
            if p.arg != "self"
        }
        if not params:
            return set()
        escapes: Set[str] = set()
        for node in ast.walk(method):
            if isinstance(node, ast.Assign):
                stored = any(
                    isinstance(t, ast.Attribute)
                    or isinstance(t, ast.Subscript)
                    for t in node.targets
                )
                if stored:
                    escapes |= params & _names_in(node.value)
            elif isinstance(node, ast.Call):
                called = node.func
                arg_names = set()
                for arg in (*node.args, *(kw.value for kw in node.keywords)):
                    arg_names |= _names_in(arg)
                if isinstance(called, ast.Name) and called.id in self.index.classes:
                    # Captured by a constructed object (e.g. a pending-
                    # instruction record) — retained past the call.
                    escapes |= params & arg_names
                elif isinstance(called, ast.Attribute) and called.attr in MUTATORS:
                    if _rooted_in_self(called.value):
                        escapes |= params & arg_names
                elif any(_rooted_in_self(arg) for arg in node.args):
                    # heappush(self._pipeline, (..., param, ...))-style:
                    # a call fed owned state plus a *record literal*
                    # wrapping the parameter.  Bare params alongside a
                    # self-attr (``f(x, self.k)``) are consumed, not
                    # retained, so they do not count.
                    for arg in (
                        *node.args, *(kw.value for kw in node.keywords)
                    ):
                        if isinstance(
                            arg, (ast.Tuple, ast.List, ast.Set, ast.Dict)
                        ):
                            escapes |= params & _names_in(arg)
        # Locals assigned from escaping constructors widen one step:
        # ``pending = Record(param); self.q.append(pending)``.
        local_holders: Set[str] = set()
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Name)
                and node.value.func.id in self.index.classes
                and params & _names_in(node.value)
            ):
                local_holders.add(node.targets[0].id)
        if local_holders:
            for node in ast.walk(method):
                if isinstance(node, ast.Call):
                    called = node.func
                    if (
                        isinstance(called, ast.Attribute)
                        and called.attr in MUTATORS
                        and _rooted_in_self(called.value)
                    ):
                        names = set()
                        for arg in node.args:
                            names |= _names_in(arg)
                        if names & local_holders:
                            for other in ast.walk(method):
                                if (
                                    isinstance(other, ast.Assign)
                                    and len(other.targets) == 1
                                    and isinstance(other.targets[0], ast.Name)
                                    and other.targets[0].id in (names & local_holders)
                                ):
                                    escapes |= params & _names_in(other.value)
        return escapes


def _names_in(node: ast.expr) -> Set[str]:
    """Bare names appearing anywhere inside an expression."""
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _rooted_in_self(node: ast.expr) -> bool:
    """Is an attribute/subscript chain anchored at ``self``?"""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"


def _is_property(node: ast.FunctionDef) -> bool:
    for decorator in node.decorator_list:
        name = decorator.id if isinstance(decorator, ast.Name) else (
            decorator.attr if isinstance(decorator, ast.Attribute) else None
        )
        if name in ("property", "cached_property"):
            return True
    return False


def build_stateflow(index: ProgramIndex) -> StateFlow:
    """Build (and memoize on ``index``) the state-access graph."""
    cached = index.analysis_cache.get("stateflow")
    if cached is None:
        cached = StateFlow(build_callgraph(index))
        index.analysis_cache["stateflow"] = cached
    return cached
