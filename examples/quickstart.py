#!/usr/bin/env python
"""Quickstart: simulate one application on an RTX 2080 Ti with all three
simulators and compare their predictions and speeds.

Run:  python examples/quickstart.py [app] [scale]
"""

import sys

from repro import AccelSimLike, SwiftSimBasic, SwiftSimMemory, get_preset, make_app


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "bfs"
    scale = sys.argv[2] if len(sys.argv) > 2 else "small"

    gpu = get_preset("rtx2080ti")
    app = make_app(app_name, scale=scale)
    print(f"Application {app.name!r} ({app.suite}): {len(app.kernels)} kernels, "
          f"{app.num_instructions} warp instructions")
    print(f"GPU: {gpu.name} ({gpu.num_sms} SMs, {gpu.cuda_cores} CUDA cores)\n")

    baseline_wall = None
    for simulator_cls in (AccelSimLike, SwiftSimBasic, SwiftSimMemory):
        simulator = simulator_cls(gpu)
        result = simulator.simulate(app)
        speedup = ""
        if baseline_wall is None:
            baseline_wall = result.wall_time_seconds
        else:
            speedup = f"  ({baseline_wall / result.wall_time_seconds:.1f}x vs baseline)"
        print(f"{simulator.name:14s} {result.total_cycles:9d} cycles   "
              f"IPC={result.ipc:5.2f}   {result.wall_time_seconds:6.2f}s wall{speedup}")
        metrics = result.metrics
        l1 = metrics.l1_miss_rate()
        if l1 is not None:
            print(f"{'':14s} L1 miss rate {100 * l1:.1f}%   "
                  f"L2 miss rate {100 * (metrics.l2_miss_rate() or 0):.1f}%")
    print("\nThe two Swift-Sim plans predict nearly the same cycle count as the")
    print("fully cycle-accurate baseline while running several times faster —")
    print("that is the paper's hybrid-modeling claim in one run.")


if __name__ == "__main__":
    main()
