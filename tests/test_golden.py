"""Golden regression tests.

These lock the exact cycle counts of the three simulators on four tiny
applications against the shrunken test GPU.  Simulation is fully
deterministic, so any diff here means a *timing-model change* — which is
fine when intentional, but must never happen by accident.

When a deliberate modeling change shifts these numbers, regenerate with:

    python - <<'EOF'
    import sys; sys.path.insert(0, "tests")
    from conftest import make_tiny_gpu
    from repro import AccelSimLike, SwiftSimBasic, SwiftSimMemory, make_app
    gpu = make_tiny_gpu()
    for app in ("gemm", "sm", "bfs", "hotspot"):
        trace = make_app(app, scale="tiny")
        print(app, {c.__name__: c(gpu).simulate(trace, gather_metrics=False).total_cycles
                    for c in (AccelSimLike, SwiftSimBasic, SwiftSimMemory)})
    EOF

and explain the shift in the commit message.
"""

import pytest

from repro import AccelSimLike, SwiftSimBasic, SwiftSimMemory, make_app

from conftest import make_tiny_gpu

GOLDEN_CYCLES = {
    "gemm": {"AccelSimLike": 738, "SwiftSimBasic": 835, "SwiftSimMemory": 622},
    "sm": {"AccelSimLike": 701, "SwiftSimBasic": 720, "SwiftSimMemory": 696},
    "bfs": {"AccelSimLike": 8199, "SwiftSimBasic": 11342, "SwiftSimMemory": 5923},
    "hotspot": {"AccelSimLike": 1790, "SwiftSimBasic": 1916, "SwiftSimMemory": 1532},
}

_SIMULATORS = {
    "AccelSimLike": AccelSimLike,
    "SwiftSimBasic": SwiftSimBasic,
    "SwiftSimMemory": SwiftSimMemory,
}


@pytest.mark.parametrize("app_name", sorted(GOLDEN_CYCLES))
@pytest.mark.parametrize("simulator_name", sorted(_SIMULATORS))
def test_golden_cycles(app_name, simulator_name):
    gpu = make_tiny_gpu()
    app = make_app(app_name, scale="tiny")
    simulator = _SIMULATORS[simulator_name](gpu)
    cycles = simulator.simulate(app, gather_metrics=False).total_cycles
    assert cycles == GOLDEN_CYCLES[app_name][simulator_name], (
        f"{simulator_name} on {app_name}: timing model changed "
        f"(got {cycles}, golden {GOLDEN_CYCLES[app_name][simulator_name]}); "
        "regenerate the goldens if this was intentional (see module docstring)"
    )
