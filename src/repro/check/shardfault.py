"""Shard-fault check: chaos-killed sharded runs must stay bit-identical.

This pillar drills :mod:`repro.sim.shardfault` from both ends:

* **Multiprocess drills** run the synthetic demo system under the real
  :class:`~repro.sim.shardfault.ShardSupervisor` with seeded chaos shard
  kills and hangs — workers genuinely ``os._exit`` or sleep past their
  heartbeat deadline — and demand that the recovered (or degraded) run
  reproduces the serial engine's final cycle and **every** counter with
  an empty ignore set.  The hang drill additionally asserts the run
  *completes* within a wall-clock bound: a hung worker must be reaped at
  its deadline, never block the barrier forever.

* **Simulator drills** run the production simulators supervised
  (``simulate(shard_plan=..., fault_policy=...)``) with chaos faults on
  the lockstep boundary seam, comparing against the serial run via the
  same empty-ignore-set machinery the sharded pillar uses, and verify
  the ``fault_tolerance`` tagging — including the forced-degrade path
  (kill rate 1, one attempt) whose result must say
  ``mode="lockstep-degraded"`` and still match serial bit for bit.

Like "serve", this pillar spawns worker processes, so it runs only when
requested by name (``repro check --mode shardfault``), never under
"all".
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Type

from repro.frontend.config import GPUConfig
from repro.resilience.chaos import ChaosPlan
from repro.resilience.policy import RetryPolicy
from repro.check.report import CheckFinding, info, violation
from repro.check.shadow import compare_results
from repro.sim.engine import Engine
from repro.sim.shard import ShardPlan
from repro.sim.shardfault import ShardFaultPolicy, ShardSupervisor
from repro.sim.synthetic import (
    SyntheticSpec,
    attach_serial,
    build_shard,
    build_system,
    collect_counters,
    demo_spec,
)
from repro.simulators.base import PlanSimulator
from repro.tracegen.suites import make_app

_CHECK = "shardfault"

#: Wall-clock ceiling for the hung-worker drill.  Generous versus the
#: sub-second heartbeat deadline it configures — the assertion is that
#: reaping happens at the deadline rather than never, not a perf bound.
HANG_DRILL_CEILING_SECONDS = 60.0


def _serial_reference(spec: SyntheticSpec):
    modules, channels = build_system(spec)
    engine = Engine(allow_jump=True, start_cycle=0)
    attach_serial(engine, modules, channels)
    final = engine.run(max_cycles=1_000_000_000)
    return final, collect_counters(modules)


def _diff_counters(reference, observed) -> str:
    for name in sorted(set(reference) | set(observed)):
        if reference.get(name) != observed.get(name):
            return (
                f"first divergence at {name!r}: "
                f"serial={reference.get(name)} vs {observed.get(name)}"
            )
    return "counter key sets match but values differ"


def _supervised_drill(
    label: str,
    spec: SyntheticSpec,
    policy: ShardFaultPolicy,
    *,
    expect_degraded: Optional[bool] = None,
    expect_faults: bool = True,
    bundle_dir=None,
) -> List[CheckFinding]:
    findings: List[CheckFinding] = []
    serial_final, reference = _serial_reference(spec)
    supervisor = ShardSupervisor(
        build_shard, (spec,), spec.shards, spec.routes(),
        lookahead=spec.min_cross_latency(),
        policy=policy,
        bundle_dir=bundle_dir,
        task=label,
    )
    started = time.monotonic()
    outcome = supervisor.run()
    elapsed = time.monotonic() - started
    subject = f"synthetic drill [{label}]"
    if outcome.final_cycle != serial_final:
        findings.append(violation(
            _CHECK, subject,
            f"final cycle diverged: serial={serial_final} vs "
            f"supervised={outcome.final_cycle}",
        ))
    if outcome.counters != reference:
        findings.append(violation(
            _CHECK, subject, _diff_counters(reference, outcome.counters),
        ))
    if expect_faults and not outcome.injected:
        findings.append(violation(
            _CHECK, subject,
            "drill injected no shard faults — chaos rates/seed make the "
            "drill vacuous",
        ))
    if expect_degraded is not None and outcome.degraded != expect_degraded:
        findings.append(violation(
            _CHECK, subject,
            f"expected degraded={expect_degraded}, got {outcome.degraded} "
            f"(mode={outcome.mode!r}, faults={len(outcome.faults)}, "
            f"recoveries={outcome.recoveries})",
        ))
    if elapsed > HANG_DRILL_CEILING_SECONDS:
        findings.append(violation(
            _CHECK, subject,
            f"drill took {elapsed:.1f}s — a worker blocked past its "
            f"deadline instead of being reaped",
        ))
    if not findings:
        findings.append(info(
            _CHECK, subject,
            f"bit-identical to serial after {len(outcome.injected)} "
            f"injected fault(s), {outcome.recoveries} replay "
            f"recoveries, degraded={outcome.degraded} "
            f"({elapsed:.1f}s, {outcome.windows} windows)",
        ))
    return findings


def synthetic_drills(bundle_dir=None, progress=None) -> List[CheckFinding]:
    """The three multiprocess drills: kill-recovery, hang-within-
    deadline, and forced degrade-to-lockstep."""
    findings: List[CheckFinding] = []
    spec = demo_spec(shards=2, nodes_per_shard=3, seed=11, latency=4)

    findings.extend(_supervised_drill(
        "kill-recovery", spec,
        ShardFaultPolicy(
            retry=RetryPolicy(max_attempts=8, base_delay=0.0, jitter=0.0),
            chaos=ChaosPlan(seed=1337, shard_kill_rate=0.35),
            window_deadline_seconds=20.0,
            build_deadline_seconds=20.0,
            degrade=True,
        ),
    ))
    if progress is not None:
        progress("shardfault drill kill-recovery")

    findings.extend(_supervised_drill(
        "hang-deadline", spec,
        ShardFaultPolicy(
            retry=RetryPolicy(max_attempts=8, base_delay=0.0, jitter=0.0),
            chaos=ChaosPlan(
                seed=20258, shard_hang_rate=0.30, shard_hang_seconds=5.0,
            ),
            window_deadline_seconds=0.4,
            build_deadline_seconds=20.0,
            degrade=True,
        ),
    ))
    if progress is not None:
        progress("shardfault drill hang-deadline")

    findings.extend(_supervised_drill(
        "forced-degrade", spec,
        ShardFaultPolicy(
            retry=RetryPolicy(max_attempts=1, base_delay=0.0, jitter=0.0),
            chaos=ChaosPlan(seed=7, shard_kill_rate=1.0),
            window_deadline_seconds=20.0,
            build_deadline_seconds=20.0,
            degrade=True,
        ),
        expect_degraded=True,
        bundle_dir=bundle_dir,
    ))
    if progress is not None:
        progress("shardfault drill forced-degrade")
    return findings


def supervised_simulate_check(
    simulator: PlanSimulator,
    app,
    policy: ShardFaultPolicy,
    *,
    expect_degraded: Optional[bool] = None,
) -> List[CheckFinding]:
    """Serial vs supervised-sharded run of one (simulator, app) pair."""
    plan = ShardPlan.two_way()
    subject = (
        f"{simulator.name} x {app.name} "
        f"[supervised/{'degrade' if expect_degraded else 'recover'}]"
    )
    serial = simulator.simulate(app)
    supervised = simulator.simulate(
        app, shard_plan=plan, fault_policy=policy,
    )
    findings = compare_results(
        subject, serial, supervised,
        ignore_counters=frozenset(),
        check=_CHECK,
        labels=("serial", "supervised"),
    )
    tolerance = (supervised.sharding or {}).get("fault_tolerance")
    if tolerance is None:
        findings.append(violation(
            _CHECK, subject,
            "supervised run carries no sharding['fault_tolerance'] record",
        ))
        tolerance = {}
    if expect_degraded is not None:
        mode = (supervised.sharding or {}).get("mode")
        if bool(tolerance.get("degraded")) != expect_degraded:
            findings.append(violation(
                _CHECK, subject,
                f"expected degraded={expect_degraded}, got "
                f"{tolerance.get('degraded')} (mode={mode!r})",
            ))
        if expect_degraded and mode != "lockstep-degraded":
            findings.append(violation(
                _CHECK, subject,
                f"degraded run must be tagged mode='lockstep-degraded', "
                f"got {mode!r}",
            ))
    if not any(f.severity == "violation" for f in findings):
        findings.append(info(
            _CHECK, subject,
            f"bit-identical to serial ({serial.total_cycles} cycles) "
            f"after {tolerance.get('attempts', '?')} attempt(s), "
            f"{len(tolerance.get('faults', []))} fault(s), "
            f"degraded={tolerance.get('degraded')}",
        ))
    return findings


def shardfault_check(
    config: GPUConfig,
    names: Sequence[str],
    scale: str = "tiny",
    simulator_classes: Sequence[Type[PlanSimulator]] = (),
    bundle_dir=None,
    progress=None,
) -> List[CheckFinding]:
    """The pillar: multiprocess drills + supervised simulator runs."""
    findings = synthetic_drills(bundle_dir=bundle_dir, progress=progress)

    # Hybrid simulators only (like the resilience pillar): the
    # cycle-accurate baseline would dominate wall time without changing
    # what the supervision layer is exercising.
    classes = list(simulator_classes)[1:] or list(simulator_classes)
    recovery_policy = ShardFaultPolicy(
        retry=RetryPolicy(max_attempts=4, base_delay=0.0, jitter=0.0),
        # Seed chosen so the CI apps (bfs, gemm, sm) each draw at least
        # one fault on an early attempt and a clean slot within the
        # budget — the recovery path is exercised, never vacuous.
        chaos=ChaosPlan(
            seed=2, shard_kill_rate=0.35, shard_hang_rate=0.20,
        ),
        degrade=True,
    )
    degrade_policy = ShardFaultPolicy(
        retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
        chaos=ChaosPlan(seed=4, shard_kill_rate=1.0),
        degrade=True,
    )
    faults_seen = 0
    for simulator_cls in classes:
        for name in names:
            app = make_app(name, scale=scale)
            simulator = simulator_cls(config)
            pair = supervised_simulate_check(simulator, app, recovery_policy)
            findings.extend(pair)
            if progress is not None:
                progress(f"shardfault {simulator.name} x {name}")
        # One forced-degrade pair per simulator bounds the pillar's cost.
        if names:
            app = make_app(names[0], scale=scale)
            findings.extend(supervised_simulate_check(
                simulator_cls(config), app, degrade_policy,
                expect_degraded=True,
            ))
            if progress is not None:
                progress(f"shardfault {simulator_cls(config).name} degrade")
    for finding in findings:
        if finding.severity == "info" and "fault(s)" in finding.message:
            faults_seen += 0 if ", 0 fault(s)" in finding.message else 1
    if classes and names and faults_seen == 0:
        findings.append(violation(
            _CHECK, "supervised simulators",
            "no chaos shard fault fired across any supervised pair — "
            "the recovery ladder was never exercised",
        ))
    return findings
