"""Tests for the synthetic workload generators."""

import pytest

from repro.errors import WorkloadError
from repro.frontend.isa import InstKind, MemSpace, UnitClass
from repro.frontend.trace import instruction_mix
from repro.memory.access import coalesce
from repro.tracegen.base import KernelBuilder, Scale, WarpBuilder, divergent_mask
from repro.tracegen.patterns import (
    broadcast_pattern,
    coalesced_pattern,
    random_pattern,
    region_base,
    stencil_pattern,
    strided_pattern,
)
from repro.tracegen.suites import APPLICATIONS, app_names, make_app

import random


class TestScale:
    def test_parse_strings(self):
        assert Scale.parse("tiny") is Scale.TINY
        assert Scale.parse("SMALL") is Scale.SMALL
        assert Scale.parse(Scale.MEDIUM) is Scale.MEDIUM

    def test_parse_unknown(self):
        with pytest.raises(WorkloadError):
            Scale.parse("huge")

    def test_pick(self):
        assert Scale.TINY.pick(1, 2, 3) == 1
        assert Scale.SMALL.pick(1, 2, 3) == 2
        assert Scale.MEDIUM.pick(1, 2, 3) == 3


class TestPatterns:
    LANES = list(range(32))

    def test_regions_do_not_overlap(self):
        a = coalesced_pattern(0, 0, self.LANES)
        b = coalesced_pattern(1, 0, self.LANES)
        assert max(a) < region_base(1)
        assert min(b) >= region_base(1)

    def test_coalesced_produces_four_sectors(self):
        addrs = coalesced_pattern(0, 5, self.LANES)
        assert len(coalesce(addrs)) == 4

    def test_strided_defeats_coalescing(self):
        addrs = strided_pattern(0, 0, self.LANES, stride_bytes=384)
        assert len(coalesce(addrs)) == 32

    def test_broadcast_single_sector(self):
        addrs = broadcast_pattern(0, 7, self.LANES)
        assert len(coalesce(addrs)) == 1

    def test_random_within_footprint(self):
        rng = random.Random(1)
        addrs = random_pattern(2, rng, self.LANES, footprint_bytes=4096)
        base = region_base(2)
        assert all(base <= a < base + 4096 for a in addrs)

    def test_stencil_neighbours_share_lines(self):
        center = stencil_pattern(0, 10, 2, self.LANES, width=2048)
        east = stencil_pattern(0, 10, 2, self.LANES, width=2048, offset_cols=1)
        shared = set(a // 128 for a in center) & set(a // 128 for a in east)
        assert shared  # adjacent columns overlap in cache lines

    def test_coalesced_wraps_footprint(self):
        addrs = coalesced_pattern(0, 10**9, self.LANES, wrap_elements=1024)
        base = region_base(0)
        assert all(base <= a < base + 1024 * 4 for a in addrs)


class TestWarpBuilder:
    def test_alu_chain_is_serially_dependent(self):
        builder = WarpBuilder(0, random.Random(0))
        builder.alu_chain("IADD3", 4)
        warp = builder.finish()
        insts = warp.instructions
        for prev, curr in zip(insts[1:-1], insts[2:-1]):
            assert prev.dest_regs[0] in curr.src_regs

    def test_pcs_increase_monotonically(self):
        builder = WarpBuilder(0, random.Random(0))
        builder.alu_parallel("FADD", 5)
        warp = builder.finish()
        pcs = [i.pc for i in warp.instructions]
        assert pcs == sorted(pcs) and len(set(pcs)) == len(pcs)

    def test_finish_appends_exit(self):
        builder = WarpBuilder(0, random.Random(0))
        builder.alu("MOV")
        warp = builder.finish()
        assert warp.instructions[-1].kind is InstKind.EXIT

    def test_load_mask_address_consistency(self):
        builder = WarpBuilder(0, random.Random(0))
        builder.load([0x100, 0x200], mask=0b11)
        warp = builder.finish()
        assert warp.instructions[0].active_threads == 2

    def test_divergent_mask_bounds(self):
        rng = random.Random(3)
        for __ in range(100):
            mask = divergent_mask(rng, min_active=2, max_active=7)
            assert 2 <= bin(mask).count("1") <= 7


class TestKernelBuilder:
    def test_rejects_empty_geometry(self):
        with pytest.raises(WorkloadError):
            KernelBuilder("k", 0, 4)

    def test_deterministic_by_seed_label(self):
        def body(builder, block_id, warp_id):
            builder.load(
                [0x1000 + builder.rng.randrange(256) * 4 for __ in range(32)]
            )

        k1 = KernelBuilder("same", 2, 2).build(body)
        k2 = KernelBuilder("same", 2, 2).build(body)
        k3 = KernelBuilder("different", 2, 2).build(body)
        addr = lambda k: k.blocks[0].warps[0].instructions[0].addresses
        assert addr(k1) == addr(k2)
        assert addr(k1) != addr(k3)


class TestSuites:
    def test_all_five_suites_covered(self):
        suites = {APPLICATIONS[name][0] for name in APPLICATIONS}
        assert suites == {"rodinia", "polybench", "mars", "tango", "pannotia"}

    def test_at_least_twenty_apps(self):
        assert len(app_names()) >= 20

    @pytest.mark.parametrize("name", app_names())
    def test_every_app_builds_at_tiny(self, name):
        app = make_app(name, scale="tiny")
        assert app.num_instructions > 0
        assert app.suite

    def test_unknown_app(self):
        with pytest.raises(WorkloadError):
            make_app("doom")

    def test_scales_grow(self):
        tiny = make_app("gemm", scale="tiny").num_instructions
        small = make_app("gemm", scale="small").num_instructions
        assert small > tiny

    def test_generation_deterministic(self):
        a = make_app("bfs", scale="tiny")
        b = make_app("bfs", scale="tiny")
        for ka, kb in zip(a.kernels, b.kernels):
            for ba, bb in zip(ka.blocks, kb.blocks):
                for wa, wb in zip(ba.warps, bb.warps):
                    assert wa.instructions == wb.instructions

    def test_app_characters(self):
        # Spot-check that apps carry their documented character.
        mixes = {
            name: instruction_mix(make_app(name, scale="tiny"))
            for name in ("sm", "gru", "bfs", "gemm")
        }
        # String match is INT-heavy.
        assert mixes["sm"].get(UnitClass.INT, 0) > mixes["sm"].get(UnitClass.SP, 0)
        # DNN apps exercise the SFU (activations).
        assert mixes["gru"].get(UnitClass.SFU, 0) > 0
        # GEMM is FP-heavy.
        assert mixes["gemm"].get(UnitClass.SP, 0) > mixes["gemm"].get(UnitClass.INT, 0)

    def test_graph_apps_diverge(self):
        app = make_app("color", scale="tiny")
        partial = 0
        total = 0
        for kernel in app.kernels:
            for inst in kernel.memory_accesses():
                total += 1
                if inst.active_threads < 32:
                    partial += 1
        assert partial > 0.3 * total

    def test_gemm_uses_shared_memory_and_barriers(self):
        app = make_app("gemm", scale="tiny")
        kernel = app.kernels[0]
        opcodes = {
            inst.opcode
            for block in kernel.blocks
            for warp in block.warps
            for inst in warp.instructions
        }
        assert "LDS" in opcodes and "STS" in opcodes and "BAR.SYNC" in opcodes
        assert kernel.blocks[0].shared_mem_bytes > 0

    def test_lu_blocks_shrink_across_kernels(self):
        app = make_app("lu", scale="small")
        block_counts = [len(k.blocks) for k in app.kernels]
        assert block_counts == sorted(block_counts, reverse=True)
        assert block_counts[0] > block_counts[-1]
