"""Exception hierarchy for the Swift-Sim reproduction.

Every error raised deliberately by this package derives from
:class:`SwiftSimError`, so callers can catch one type at the API boundary.
"""

from __future__ import annotations


class SwiftSimError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(SwiftSimError):
    """A hardware configuration is inconsistent or cannot be parsed."""


class TraceError(SwiftSimError):
    """An application trace is malformed or violates trace invariants."""


class PlanError(SwiftSimError):
    """A :class:`repro.sim.plan.ModelingPlan` cannot be assembled."""


class SimulationError(SwiftSimError):
    """The simulation engine reached an inconsistent state."""


class MetricsError(SwiftSimError):
    """Metrics gathering detected a corrupting condition (e.g. two
    distinct modules sharing one name inside a single module tree)."""


class CheckError(SwiftSimError):
    """A :mod:`repro.check` verification check found a violation while
    running in strict mode."""


class AnalysisError(SwiftSimError):
    """The :mod:`repro.analyze` static analyzer was misused (unknown
    rule, unparsable source, corrupt baseline) — distinct from findings,
    which are reported, not raised."""


class CounterKindError(MetricsError):
    """A counter name was used with both sum semantics (``add``) and
    max semantics (``peak``); the mixed value would be meaningless."""


class WorkloadError(SwiftSimError):
    """A synthetic workload specification is invalid."""


class TaskFailure(SwiftSimError):
    """A supervised task failed terminally (all retries exhausted).

    Carries the context the supervisor knew at failure time so sweep
    reports can say *which* app died, on *which* attempt, and why.
    """

    #: Short machine-readable failure kind ("crash", "timeout", ...).
    kind = "failure"
    #: Whether the supervisor may retry this failure class.
    retryable = False

    def __init__(
        self,
        message: str,
        *,
        task: str = "?",
        attempt: int = 0,
        context: str = "",
    ) -> None:
        super().__init__(message)
        self.task = task
        self.attempt = attempt
        self.context = context

    def __str__(self) -> str:
        detail = f" [{self.context}]" if self.context else ""
        return (
            f"task {self.task!r} attempt {self.attempt}: "
            f"{super().__str__()}{detail}"
        )


class WorkerCrash(TaskFailure):
    """A worker process died (non-zero exit, killed, or lost its pipe)
    before delivering a result."""

    kind = "crash"
    retryable = True


class TaskTimeout(TaskFailure):
    """A task exceeded its wall-clock budget and its worker was reaped."""

    kind = "timeout"
    retryable = True


class ResourceExhausted(TaskFailure):
    """A worker ran out of a resource (memory, file descriptors) while
    executing a task."""

    kind = "exhausted"
    retryable = True


class CorruptResult(TaskFailure):
    """A worker delivered a result that failed validation (e.g. injected
    corruption, truncated payload)."""

    kind = "corrupt"
    retryable = True
