"""Operand collector and register-file bank model (cycle-accurate only).

After issue, an instruction occupies a collector unit while its source
operands are read from the banked register file; operands whose
registers share a bank are read serially.  The hybrid plans elide this
stage entirely — its latency folds into the fixed ALU latency — which is
part of Swift-Sim-Basic's saved work.
"""

from __future__ import annotations

from typing import List, Optional

from repro.frontend.config import SMConfig
from repro.frontend.trace import TraceInstruction
from repro.sim.module import ModelLevel, Module


class OperandCollector(Module):
    """Collector units + register bank conflicts for one sub-core."""

    component = "operand_collector"
    level = ModelLevel.CYCLE_ACCURATE

    def __init__(self, sm_config: SMConfig, name: str = "operand_collector") -> None:
        super().__init__(name)
        self.sm_config = sm_config
        self._unit_free: List[int] = [0] * sm_config.operand_collector_units

    def reset(self) -> None:
        super().reset()
        self._unit_free = [0] * self.sm_config.operand_collector_units

    def read_cycles(self, inst: TraceInstruction) -> int:
        """Cycles to gather ``inst``'s sources from the banked register file."""
        banks = self.sm_config.register_banks
        per_bank = {}
        for reg in inst.src_regs:
            bank = reg % banks
            per_bank[bank] = per_bank.get(bank, 0) + 1
        if not per_bank:
            return 1
        worst = max(per_bank.values())
        if worst > 1:
            self.counters.add("bank_conflicts", worst - 1)
        return worst

    def try_collect(self, inst: TraceInstruction, cycle: int) -> Optional[int]:
        """Claim a collector unit at ``cycle``.

        Returns the cycle operand read finishes, or None when every
        collector unit is busy (structural stall).
        """
        units = self._unit_free
        for index, free in enumerate(units):
            if free <= cycle:
                duration = self.read_cycles(inst)
                units[index] = cycle + duration
                self.counters.add("collections")
                return cycle + duration
        self.counters.add("structural_stalls")
        return None

    def earliest_free(self) -> int:
        return min(self._unit_free)
