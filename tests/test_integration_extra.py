"""Additional end-to-end behaviours: every execution-unit class, local
memory, write-back traffic, scheduling policies, MSHR merging effects,
cross-kernel cache warmth, and the real GPU presets."""

import pytest

from repro import AccelSimLike, SwiftSimBasic, SwiftSimMemory, get_preset, make_app
from repro.frontend.trace import (
    ApplicationTrace,
    BlockTrace,
    KernelTrace,
    TraceInstruction,
    WarpTrace,
)

from conftest import (
    alu,
    coalesced_addrs,
    load,
    make_single_warp_app,
    make_tiny_gpu,
    make_warp,
    store,
)


class TestUnitClassCoverage:
    @pytest.mark.parametrize(
        "opcode,unit_counter",
        [
            ("IADD3", "alu_int"),
            ("FFMA", "alu_sp"),
            ("DFMA", "alu_dp"),
            ("MUFU.SQRT", "alu_sfu"),
            ("HMMA", "alu_tensor"),
        ],
    )
    def test_each_unit_executes(self, tiny_gpu, opcode, unit_counter):
        app = make_single_warp_app([alu(16 * i, 40 + i, opcode=opcode) for i in range(4)])
        for simulator_cls in (AccelSimLike, SwiftSimBasic):
            result = simulator_cls(tiny_gpu).simulate(app)
            unit_name = unit_counter.replace("alu_", "")
            executed = (
                result.metrics.total("instructions", prefix=f"exec_{unit_name}")
                + result.metrics.total("instructions", prefix=f"alu_{unit_name}")
            )
            assert executed == 4, (simulator_cls.__name__, opcode)

    def test_dp_much_slower_than_sp(self, tiny_gpu):
        sp = make_single_warp_app([alu(16 * i, 40 + i, opcode="FFMA") for i in range(8)], "sp")
        dp = make_single_warp_app([alu(16 * i, 40 + i, opcode="DFMA") for i in range(8)], "dp")
        sim = SwiftSimBasic(tiny_gpu)
        sp_cycles = sim.simulate(sp, gather_metrics=False).total_cycles
        dp_cycles = SwiftSimBasic(tiny_gpu).simulate(dp, gather_metrics=False).total_cycles
        # DP has 0.5 lanes: dispatch interval 64 vs 2.
        assert dp_cycles > 3 * sp_cycles


class TestMemoryBehaviours:
    def test_local_memory_routes_through_hierarchy(self, tiny_gpu):
        inst = TraceInstruction(
            0, "LDL", dest_regs=(40,), addresses=tuple(coalesced_addrs(base=0x900000))
        )
        app = make_single_warp_app([inst])
        result = SwiftSimBasic(tiny_gpu).simulate(app)
        assert result.metrics.total("sector_accesses", prefix="l1") == 4

    def test_write_back_l2_generates_dram_writes_on_eviction(self, tiny_gpu):
        # Stream enough distinct stores through the write-back L2 to force
        # dirty evictions and hence DRAM write traffic.
        stores = []
        for i in range(120):
            addrs = coalesced_addrs(base=0x100000 + i * 4096)
            stores.append(store(16 * i, 1, addrs))
        app = make_single_warp_app(stores)
        result = SwiftSimBasic(tiny_gpu).simulate(app)
        dram_writes = result.metrics.total("writes", prefix="dram")
        assert dram_writes > 0

    def test_mshr_merging_visible_in_counters(self, tiny_gpu):
        # Two warps loading the same line back-to-back: the second merges.
        warps = []
        for warp_id in range(2):
            insts = [
                load(0, 40, coalesced_addrs(base=0x500000)),
                TraceInstruction(16, "EXIT"),
            ]
            warps.append(WarpTrace(warp_id, insts))
        app = ApplicationTrace("merge", [KernelTrace("k", [BlockTrace(0, warps)])])
        result = AccelSimLike(tiny_gpu).simulate(app)
        merged = result.metrics.total("pending_hits", prefix="l1")
        dram_reads = result.metrics.total("reads", prefix="dram")
        assert merged + dram_reads > 0
        assert dram_reads <= 4  # never two fetches for the same sectors

    def test_cross_kernel_cache_warmth(self, tiny_gpu):
        # Identical kernels back to back: the second runs faster on warm
        # caches in the simulated-memory plans.
        def kernel(name):
            warp = make_warp([
                load(0, 40, coalesced_addrs(base=0x300000)),
                load(16, 41, coalesced_addrs(base=0x300000 + 128)),
            ])
            return KernelTrace(name, [BlockTrace(0, [warp])])

        app = ApplicationTrace("warmth", [kernel("k1"), kernel("k2")])
        result = SwiftSimBasic(tiny_gpu).simulate(app, gather_metrics=False)
        first, second = result.kernels
        assert second.cycles < first.cycles

    def test_atomics_end_to_end(self, tiny_gpu):
        inst = TraceInstruction(
            0, "ATOMG", src_regs=(1,), addresses=tuple([0x40000] * 32)
        )
        app = make_single_warp_app([inst])
        for simulator_cls in (AccelSimLike, SwiftSimBasic, SwiftSimMemory):
            result = simulator_cls(tiny_gpu).simulate(app, gather_metrics=False)
            assert result.total_cycles >= tiny_gpu.l2.latency


class TestSchedulerPoliciesEndToEnd:
    @pytest.mark.parametrize("policy", ["GTO", "LRR", "TWO_LEVEL"])
    def test_policy_runs_and_completes(self, policy):
        gpu = make_tiny_gpu().with_sm(scheduler_policy=policy)
        app = make_app("gemm", scale="tiny")
        result = SwiftSimBasic(gpu).simulate(app)
        assert result.metrics.instructions == app.num_instructions

    def test_policies_can_differ_on_latency_hiding(self):
        app = make_app("gemm", scale="tiny")
        cycles = {}
        for policy in ("GTO", "LRR"):
            gpu = make_tiny_gpu().with_sm(scheduler_policy=policy)
            cycles[policy] = SwiftSimBasic(gpu).simulate(
                app, gather_metrics=False
            ).total_cycles
        # They may legitimately tie on tiny inputs, but must both be sane.
        assert all(value > 0 for value in cycles.values())


class TestRealPresets:
    @pytest.mark.parametrize("preset", ["rtx2080ti", "rtx3060", "rtx3090"])
    def test_tiny_app_runs_on_real_config(self, preset):
        gpu = get_preset(preset)
        app = make_app("gemm", scale="tiny")
        result = SwiftSimMemory(gpu).simulate(app, gather_metrics=False)
        assert result.total_cycles > 0

    def test_bigger_gpu_is_not_slower(self):
        # 82 SMs should finish a many-block app at least as fast as 28 SMs.
        app = make_app("hotspot", scale="small")
        small_gpu = SwiftSimMemory(get_preset("rtx3060")).simulate(
            app, gather_metrics=False
        )
        big_gpu = SwiftSimMemory(get_preset("rtx3090")).simulate(
            app, gather_metrics=False
        )
        assert big_gpu.total_cycles <= small_gpu.total_cycles * 1.2


class TestDivergence:
    def test_partial_mask_reduces_transactions(self, tiny_gpu):
        full = load(0, 40, [0x600000 + 128 * i for i in range(32)])
        two_lanes = load(0, 40, [0x600000, 0x600000 + 128], mask=0b11)
        app_full = make_single_warp_app([full], "full")
        app_two = make_single_warp_app([two_lanes], "two")
        m_full = SwiftSimBasic(tiny_gpu).simulate(app_full).metrics
        m_two = SwiftSimBasic(make_tiny_gpu()).simulate(app_two).metrics
        assert m_full.total("sector_transactions") == 32
        assert m_two.total("sector_transactions") == 2
