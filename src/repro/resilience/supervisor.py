"""Supervised task execution: the fault-tolerant parallel driver core.

The paper's bulk-evaluation workflow (§IV-B2) runs tens of independent
simulations concurrently for hours; a bare ``ProcessPoolExecutor`` lets
one crashed or hung worker unwind the whole campaign.  The
:class:`Supervisor` replaces it with per-task worker processes it
actually supervises:

* per-task state machine (pending → running → done/failed) with a full
  attempt history;
* per-attempt wall-clock timeouts — hung workers are reaped (killed and
  joined) and the task retried;
* retries with exponential backoff + deterministic jitter
  (:class:`~repro.resilience.policy.RetryPolicy`);
* dead workers are reaped and a fresh process spawned for the retry;
* failures classified into the typed taxonomy in :mod:`repro.errors`
  (:class:`~repro.errors.WorkerCrash`,
  :class:`~repro.errors.TaskTimeout`,
  :class:`~repro.errors.ResourceExhausted`,
  :class:`~repro.errors.CorruptResult`), each carrying task/attempt
  context;
* optional seeded fault injection
  (:class:`~repro.resilience.chaos.ChaosPlan`) so all of the above is
  provable, not aspirational.

With ``workers <= 1`` the supervisor runs attempts in-process (no pool
overhead, same retry/backoff/chaos semantics); injected crashes and
true-hangs are then simulated as exceptions since the supervisor cannot
kill its own process.  Real (non-injected) hangs are only reapable in
subprocess mode.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    CorruptResult,
    ResourceExhausted,
    TaskFailure,
    TaskTimeout,
    WorkerCrash,
)
from repro.resilience.chaos import (
    CRASH_EXIT_CODE,
    ChaosPlan,
    CorruptedResult,
)
from repro.resilience.policy import RetryPolicy

#: How long (seconds) to wait for a terminated worker before escalating
#: to SIGKILL.
_REAP_GRACE = 0.5


@dataclass(frozen=True)
class Task:
    """One unit of supervised work.

    ``fn(*args)`` runs in a worker process (or in-process with
    ``workers <= 1``) and must return a picklable result.  ``validate``,
    when given, runs *in the supervisor* on every delivered result and
    raises to reject it (the rejection is classified as a retryable
    :class:`~repro.errors.CorruptResult`).

    ``args_for_attempt``, when given, computes the argument tuple for a
    specific 1-based attempt number (overriding ``args``).  This is how
    checkpoint-aware tasks resume: attempt 1 starts clean, and a retry
    after a :class:`~repro.errors.TaskTimeout` or
    :class:`~repro.errors.WorkerCrash` builds arguments that pick up
    from the newest mid-run checkpoint instead of cycle 0.
    """

    key: str
    fn: Callable
    args: Tuple = ()
    validate: Optional[Callable[[object], None]] = None
    args_for_attempt: Optional[Callable[[int], Tuple]] = None

    def attempt_args(self, attempt: int) -> Tuple:
        """The argument tuple to run attempt ``attempt`` with."""
        if self.args_for_attempt is not None:
            return self.args_for_attempt(attempt)
        return self.args


@dataclass(frozen=True)
class AttemptRecord:
    """What happened on one attempt of one task."""

    index: int        #: 1-based attempt number
    outcome: str      #: "ok", "crash", "timeout", "exhausted", "corrupt", "error"
    duration: float   #: wall-clock seconds the attempt consumed
    backoff: float    #: delay scheduled before the *next* attempt (0 if none)
    message: str = ""


@dataclass
class TaskOutcome:
    """Terminal state of one task after supervision."""

    key: str
    result: object = None
    failure: Optional[TaskFailure] = None
    attempts: List[AttemptRecord] = field(default_factory=list)
    #: True when a retry the policy's ``max_attempts`` would have allowed
    #: was suppressed because attempt time + backoff would exceed
    #: ``RetryPolicy.max_total_seconds``.
    retry_cap_hit: bool = False

    @property
    def ok(self) -> bool:
        return self.failure is None

    @property
    def num_attempts(self) -> int:
        return len(self.attempts)

    @property
    def retried(self) -> bool:
        return len(self.attempts) > 1

    @property
    def total_seconds(self) -> float:
        """Cumulative wall-clock this task consumed: every attempt's
        duration plus every backoff delay scheduled between attempts —
        the quantity ``RetryPolicy.max_total_seconds`` caps."""
        return sum(
            record.duration + record.backoff for record in self.attempts
        )


def _safe_send(conn, payload) -> None:
    try:
        conn.send(payload)
    except (BrokenPipeError, OSError):
        pass


def _attempt_entry(conn, fn, args, chaos: Optional[ChaosPlan], key: str,
                   attempt: int) -> None:
    """Worker-process entry point for one attempt (module-level so it
    survives both fork and spawn start methods)."""
    action = chaos.decide(key, attempt) if chaos is not None else None
    if action == "crash":
        conn.close()
        os._exit(CRASH_EXIT_CODE)
    try:
        if action == "hang":
            time.sleep(chaos.hang_seconds)
        result = fn(*args)
        if action == "corrupt":
            result = chaos.corrupt(result)
        _safe_send(conn, ("ok", result))
    except MemoryError as exc:
        _safe_send(conn, ("exhausted", repr(exc)))
    except BaseException as exc:  # noqa: BLE001 — full report, then die
        _safe_send(conn, ("error", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


_FAILURE_CLASSES = {
    "crash": WorkerCrash,
    "timeout": TaskTimeout,
    "exhausted": ResourceExhausted,
    "corrupt": CorruptResult,
    "error": TaskFailure,
}


def classify_failure(outcome: str, message: str, *, task: str,
                     attempt: int, context: str = "") -> TaskFailure:
    """Map an attempt outcome string onto the typed failure taxonomy."""
    cls = _FAILURE_CLASSES.get(outcome, TaskFailure)
    return cls(message, task=task, attempt=attempt, context=context)


@dataclass
class _Running:
    task: Task
    attempt: int
    process: multiprocessing.Process
    conn: object
    started: float
    deadline: Optional[float]


class Supervisor:
    """Runs tasks under a retry policy with optional fault injection."""

    def __init__(
        self,
        policy: Optional[RetryPolicy] = None,
        workers: Optional[int] = None,
        chaos: Optional[ChaosPlan] = None,
        context: str = "",
        poll_interval: float = 0.005,
    ) -> None:
        self.policy = policy if policy is not None else RetryPolicy()
        if workers is None:
            workers = max(1, min(os.cpu_count() or 1, 50))
        self.workers = max(1, workers)
        self.chaos = chaos
        self.context = context
        self.poll_interval = poll_interval
        #: Workers spawned over the supervisor's lifetime (respawns
        #: included) — observability for tests and reports.
        self.workers_spawned = 0
        self.workers_reaped = 0

    # ------------------------------------------------------------------
    # public API

    def run(self, tasks: Sequence[Task]) -> Dict[str, TaskOutcome]:
        """Run every task to a terminal state; never raises for task
        failures (inspect the returned outcomes)."""
        keys = [task.key for task in tasks]
        if len(set(keys)) != len(keys):
            raise TaskFailure("duplicate task keys in submission",
                              task=str(keys), attempt=0)
        if self.workers <= 1:
            return {task.key: self._run_inline(task) for task in tasks}
        return self._run_pooled(tasks)

    # ------------------------------------------------------------------
    # shared bookkeeping

    def _finish_attempt(
        self,
        outcome: TaskOutcome,
        task: Task,
        attempt: int,
        status: str,
        message: str,
        duration: float,
    ) -> Optional[float]:
        """Record one attempt; return the backoff delay if the task will
        be retried, else ``None`` (outcome is then terminal)."""
        if status == "ok":
            outcome.attempts.append(AttemptRecord(
                index=attempt, outcome="ok", duration=duration, backoff=0.0,
            ))
            return None
        failure = classify_failure(
            status, message, task=task.key, attempt=attempt,
            context=self.context,
        )
        retrying = failure.retryable and attempt < self.policy.max_attempts
        backoff = self.policy.backoff(task.key, attempt) if retrying else 0.0
        cap = self.policy.max_total_seconds
        if retrying and cap is not None:
            elapsed = outcome.total_seconds + duration
            if elapsed + backoff >= cap:
                # Retrying would blow through the task's total wall-clock
                # budget — stop here and let the failure stand.
                retrying = False
                backoff = 0.0
                outcome.retry_cap_hit = True
                message = (
                    f"{message} [retry suppressed: {elapsed:.3g}s consumed "
                    f"of {cap:.3g}s total budget]"
                )
                failure = classify_failure(
                    status, message, task=task.key, attempt=attempt,
                    context=self.context,
                )
        outcome.attempts.append(AttemptRecord(
            index=attempt, outcome=status, duration=duration,
            backoff=backoff, message=message,
        ))
        if retrying:
            return backoff
        outcome.failure = failure
        return None

    def _validate(self, task: Task, result: object) -> Tuple[str, str, object]:
        """Supervisor-side result validation (corruption detection)."""
        if isinstance(result, CorruptedResult):
            return "corrupt", "result failed integrity check (marker)", None
        if task.validate is not None:
            try:
                task.validate(result)
            except Exception as exc:  # noqa: BLE001 — validator says no
                return "corrupt", f"result failed validation: {exc}", None
        return "ok", "", result

    # ------------------------------------------------------------------
    # inline (workers <= 1) execution

    def _run_inline(self, task: Task) -> TaskOutcome:
        outcome = TaskOutcome(key=task.key)
        attempt = 0
        while outcome.failure is None and outcome.result is None:
            attempt += 1
            started = time.perf_counter()
            status, message, result = self._attempt_inline(task, attempt)
            if status == "ok":
                status, message, result = self._validate(task, result)
            duration = time.perf_counter() - started
            backoff = self._finish_attempt(
                outcome, task, attempt, status, message, duration
            )
            if status == "ok":
                outcome.result = result
                break
            if backoff is None:
                break
            if backoff > 0:
                time.sleep(backoff)
        return outcome

    def _attempt_inline(self, task: Task, attempt: int):
        action = (
            self.chaos.decide(task.key, attempt)
            if self.chaos is not None else None
        )
        if action == "crash":
            return "crash", "injected worker crash (inline)", None
        if action == "hang":
            timeout = self.policy.timeout_seconds
            if timeout is not None and self.chaos.hang_seconds >= timeout:
                # A true hang: in-process we cannot kill ourselves, so
                # simulate the reap the pooled supervisor would perform.
                return (
                    "timeout",
                    f"injected hang exceeded {timeout:.3g}s budget (inline)",
                    None,
                )
            time.sleep(self.chaos.hang_seconds)
        try:
            result = task.fn(*task.attempt_args(attempt))
        except MemoryError as exc:
            return "exhausted", repr(exc), None
        except Exception as exc:  # noqa: BLE001
            return "error", f"{type(exc).__name__}: {exc}", None
        if action == "corrupt":
            result = self.chaos.corrupt(result)
        return "ok", "", result

    # ------------------------------------------------------------------
    # pooled (subprocess) execution

    def _spawn(self, task: Task, attempt: int) -> _Running:
        parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
        process = multiprocessing.Process(
            target=_attempt_entry,
            args=(child_conn, task.fn, task.attempt_args(attempt),
                  self.chaos, task.key, attempt),
            daemon=True,
        )
        process.start()
        child_conn.close()
        self.workers_spawned += 1
        started = time.monotonic()
        timeout = self.policy.timeout_seconds
        return _Running(
            task=task, attempt=attempt, process=process, conn=parent_conn,
            started=started,
            deadline=None if timeout is None else started + timeout,
        )

    def _reap(self, running: _Running, force: bool = False) -> None:
        """Join (and if needed kill) a finished or condemned worker."""
        process = running.process
        if force and process.is_alive():
            process.terminate()
            process.join(_REAP_GRACE)
            if process.is_alive():
                process.kill()
        process.join()
        running.conn.close()
        self.workers_reaped += 1

    def _poll_worker(self, running: _Running):
        """Inspect one running attempt; return (status, message, result)
        or ``None`` if it is still in flight."""
        # Message first: a worker may send its result and exit before we
        # look at liveness.
        if running.conn.poll():
            try:
                status, payload = running.conn.recv()
            except (EOFError, OSError):
                self._reap(running)
                return "crash", "worker closed its pipe mid-send", None
            except Exception as exc:  # unpicklable / torn payload
                self._reap(running, force=True)
                return "corrupt", f"undecodable worker payload: {exc}", None
            self._reap(running)
            if status == "ok":
                return "ok", "", payload
            return status, str(payload), None
        if not running.process.is_alive():
            exitcode = running.process.exitcode
            self._reap(running)
            detail = (
                "injected chaos crash"
                if exitcode == CRASH_EXIT_CODE
                else f"worker died with exit code {exitcode}"
            )
            return "crash", detail, None
        if (running.deadline is not None
                and time.monotonic() > running.deadline):
            self._reap(running, force=True)
            budget = self.policy.timeout_seconds
            return (
                "timeout",
                f"exceeded {budget:.3g}s wall-clock budget; worker reaped",
                None,
            )
        return None

    def _run_pooled(self, tasks: Sequence[Task]) -> Dict[str, TaskOutcome]:
        outcomes = {task.key: TaskOutcome(key=task.key) for task in tasks}
        #: (ready_at, submission_index, task, attempt)
        ready: List[Tuple[float, int, Task, int]] = [
            (0.0, index, task, 1) for index, task in enumerate(tasks)
        ]
        running: List[_Running] = []
        while ready or running:
            now = time.monotonic()
            # Launch everything whose backoff has elapsed, oldest first.
            ready.sort(key=lambda item: (item[0], item[1]))
            while ready and len(running) < self.workers:
                ready_at, index, task, attempt = ready[0]
                if ready_at > now:
                    break
                ready.pop(0)
                running.append(self._spawn(task, attempt))
            progressed = False
            for slot in list(running):
                polled = self._poll_worker(slot)
                if polled is None:
                    continue
                progressed = True
                running.remove(slot)
                status, message, result = polled
                if status == "ok":
                    status, message, result = self._validate(
                        slot.task, result
                    )
                duration = time.monotonic() - slot.started
                outcome = outcomes[slot.task.key]
                backoff = self._finish_attempt(
                    outcome, slot.task, slot.attempt, status, message,
                    duration,
                )
                if status == "ok":
                    outcome.result = result
                elif backoff is not None:
                    ready.append((
                        time.monotonic() + backoff,
                        len(tasks) + len(outcome.attempts),
                        slot.task,
                        slot.attempt + 1,
                    ))
            if not progressed:
                time.sleep(self.poll_interval)
        return outcomes


def raise_first_failure(outcomes: Dict[str, TaskOutcome]) -> None:
    """Raise the first task failure (in key order), if any."""
    for key in sorted(outcomes):
        if outcomes[key].failure is not None:
            raise outcomes[key].failure
