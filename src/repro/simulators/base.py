"""Common simulator driver: plan-directed assembly plus the kernel loop.

:class:`PlanSimulator` turns a :class:`~repro.sim.plan.ModelingPlan` into
a working simulator: it builds the memory system the plan asks for,
wires sub-cores whose sinks match the plan's per-component choices, and
runs each kernel of an application on a shared, continuous cycle
timeline (so cross-kernel cache warmth and reservation state carry over
exactly as on hardware).
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

from repro.core.alu_analytical import HybridALUModel
from repro.core.block_scheduler import BlockScheduler
from repro.core.execution_unit import PipelinedExecutionUnit, ResultBus
from repro.core.ldst_unit import (
    AnalyticalLDSTUnit,
    DetailedLDSTUnit,
    QueuedLDSTUnit,
    SharedMemoryUnit,
)
from repro.core.sm import SMCore
from repro.core.subcore import SubCore
from repro.core.warp_scheduler import make_warp_scheduler
from repro.errors import CheckpointError, PlanError
from repro.frontend.config import GPUConfig
from repro.frontend.trace import ApplicationTrace
from repro.memory.analytical import AnalyticalMemoryModel, MemoryProfile
from repro.memory.hierarchy import DetailedMemorySystem, QueuedMemorySystem
from repro.sim.engine import Engine
from repro.sim.metrics import MetricsGatherer
from repro.sim.module import Module
from repro.sim.parallel import ShardedEngine
from repro.sim.plan import ModelingPlan
from repro.sim.ports import ShardPortProxy
from repro.sim.shard import ShardPlan
from repro.simulators.results import KernelResult, SimulationResult

#: Per-kernel cycle backstop against modeling deadlocks.
DEFAULT_MAX_KERNEL_CYCLES = 200_000_000


class GPUSimulator:
    """Abstract simulator interface the evaluation harness drives."""

    name = "simulator"

    def __init__(self, config: GPUConfig) -> None:
        self.config = config

    def simulate(self, app: ApplicationTrace) -> SimulationResult:
        raise NotImplementedError


class PlanSimulator(GPUSimulator):
    """A simulator assembled from a :class:`ModelingPlan`."""

    #: Subclasses set the plan; instances may override it.
    plan: ModelingPlan

    def __init__(
        self,
        config: GPUConfig,
        plan: Optional[ModelingPlan] = None,
        hit_rate_source: str = "cache_sim",
    ) -> None:
        super().__init__(config)
        if plan is not None:
            self.plan = plan
        if not hasattr(self, "plan"):
            raise PlanError(f"{type(self).__name__} has no modeling plan")
        if hit_rate_source not in ("cache_sim", "reuse_distance"):
            raise PlanError(
                f"hit_rate_source must be 'cache_sim' or 'reuse_distance', "
                f"got {hit_rate_source!r}"
            )
        self.hit_rate_source = hit_rate_source
        self.name = self.plan.name

    # ------------------------------------------------------------------
    # assembly

    def _build_memory(self):
        choice = self.plan["memory"]
        if choice == "cycle_accurate":
            return DetailedMemorySystem(self.config)
        if choice == "queued":
            return QueuedMemorySystem(self.config)
        return None  # analytical: built per kernel from its profile

    def _build_analytical_memory(self, app: ApplicationTrace) -> List[AnalyticalMemoryModel]:
        """One Eq. 1 model per kernel, profiled with cross-kernel warmth."""
        profiles = MemoryProfile.for_application(
            self.config, app.kernels, source=self.hit_rate_source, memo_key=app
        )
        return [AnalyticalMemoryModel(self.config, profile) for profile in profiles]

    def _subcore_factory(self, memory) -> Callable[[SMCore, int], SubCore]:
        plan = self.plan
        sm_config = self.config.sm
        alu_cycle_accurate = plan["alu_pipeline"] == "cycle_accurate"
        shared_analytical = plan["shared_memory"] == "analytical"
        memory_choice = plan["memory"]

        def factory(sm: SMCore, sub_id: int) -> SubCore:
            result_bus = ResultBus(sm_config.issue_width)

            def exec_unit_factory(subcore: SubCore, unit_config):
                if alu_cycle_accurate:
                    return PipelinedExecutionUnit(unit_config, subcore, result_bus)
                return HybridALUModel(unit_config)

            def ldst_factory(subcore: SubCore):
                if memory_choice == "cycle_accurate":
                    return DetailedLDSTUnit(sm.sm_id, sm_config, memory, subcore)
                if memory_choice == "queued":
                    return QueuedLDSTUnit(sm.sm_id, sm_config, memory)
                return AnalyticalLDSTUnit(sm.sm_id, sm_config, memory)

            shared_unit = sm.shared_unit
            if shared_unit is None:
                shared_unit = SharedMemoryUnit(sm_config, analytical=shared_analytical)
                sm.shared_unit = shared_unit

            return SubCore(
                sm,
                sub_id,
                sm_config,
                make_warp_scheduler(sm_config.scheduler_policy),
                exec_unit_factory,
                ldst_factory,
                lambda subcore: shared_unit,
                use_frontend=plan["frontend"] == "cycle_accurate",
                use_collector=plan["operand_collector"] == "cycle_accurate",
            )

        return factory

    # ------------------------------------------------------------------
    # the kernel loop

    def simulate(
        self,
        app: ApplicationTrace,
        max_kernel_cycles: int = DEFAULT_MAX_KERNEL_CYCLES,
        gather_metrics: bool = True,
        engine_allow_jump: Optional[bool] = None,
        checker=None,
        guard=None,
        shard_plan: Optional[ShardPlan] = None,
        fault_policy=None,
        fault_injector=None,
    ) -> SimulationResult:
        """Simulate ``app`` and return a :class:`SimulationResult`.

        ``engine_allow_jump`` overrides the *engine's* clocking mode only
        — module assembly still follows the plan — so :mod:`repro.check`
        can shadow-run a jump-clocked plan per-cycle (the jump contract
        says both must be bit-identical).  ``checker`` is an optional
        :class:`~repro.sim.engine.EngineChecker` attached to every
        kernel's engine (the runtime sanitizer).

        ``guard`` is an optional :class:`repro.guard.SimulationGuard`:
        it arms the progress watchdog / invariant guards / periodic
        checkpointer on each kernel's engine and, when constructed with
        ``auto_resume=True`` and an intact checkpoint exists, restores
        the run mid-kernel and continues to completion — bit-identical
        to an uninterrupted run (``repro check --mode guard`` enforces
        this).  A guard with everything disabled attaches nothing, so
        the engine keeps its fast dispatch loop.

        ``shard_plan`` switches each kernel onto the sharded PDES
        engine (:class:`~repro.sim.parallel.ShardedEngine`) in lockstep
        mode: the module graph is decomposed per the plan (normally
        built from the static partition manifest), cross-shard port
        references are wrapped in traffic-counting
        :class:`~repro.sim.ports.ShardPortProxy` objects, and the run
        is guaranteed bit-identical to the serial engine (the sharded
        check pillar enforces this).  The result's ``sharding`` field
        carries the decomposition summary and per-edge port traffic.

        ``fault_policy`` (a :class:`repro.sim.shardfault.ShardFaultPolicy`,
        sharded runs only) supervises the run: chaos-injected shard
        faults are retried with fresh builds and, when retries exhaust,
        the run degrades to the uninjected lockstep engine — the result
        stays bit-identical either way, with the attempt/degrade record
        tagged under ``sharding["fault_tolerance"]``.  ``fault_injector``
        is the per-attempt hook the supervisor installs on the sharded
        engine's global-boundary seam; callers don't pass it directly.
        """
        if fault_policy is not None and shard_plan is not None \
                and fault_injector is None:
            from repro.sim.shardfault import simulate_supervised

            return simulate_supervised(
                self, app, shard_plan, fault_policy,
                max_kernel_cycles=max_kernel_cycles,
                gather_metrics=gather_metrics,
                engine_allow_jump=engine_allow_jump,
                checker=checker,
                guard=guard,
            )
        plan_jump = self.plan["clocking"] == "event_jump"
        allow_jump = plan_jump if engine_allow_jump is None else engine_allow_jump
        per_cycle = not plan_jump
        resume = guard.load_resume() if (
            guard is not None and guard.auto_resume
        ) else None
        if resume is not None:
            resumed_sharded = isinstance(resume.engine, ShardedEngine)
            if resumed_sharded != (shard_plan is not None):
                raise CheckpointError(
                    f"checkpoint {resume.path} was written by a "
                    f"{'sharded' if resumed_sharded else 'serial'} engine "
                    f"but this run is "
                    f"{'sharded' if shard_plan is not None else 'serial'}; "
                    f"resume with the matching engine mode or clear the "
                    f"checkpoint directory"
                )
            frame = resume.frame
            persistent_memory = frame["persistent_memory"]
            analytical_models = frame["analytical_models"]
            roots = frame["roots"]
            kernel_results = frame["kernel_results"]
            profile_seconds = frame["profile_seconds"]
            clock = frame["clock"]
            port_traffic = frame.get("port_traffic", {})
        else:
            persistent_memory = self._build_memory()
            clock = 0
            kernel_results = []
            roots = []
            analytical_models = []
            port_traffic = {}
            profile_started = time.perf_counter()
            if persistent_memory is not None:
                roots.append(persistent_memory)
            else:
                # Hit-rate profiling is trace preprocessing (like trace
                # capture itself); it is timed separately from the
                # simulation proper.
                analytical_models = self._build_analytical_memory(app)
                roots.extend(analytical_models)
            profile_seconds = time.perf_counter() - profile_started
        started = time.perf_counter()
        shard_ticks: dict = {}
        for kernel_index, kernel in enumerate(app.kernels):
            if resume is not None and kernel_index < resume.kernel_index:
                continue  # finished before the checkpoint; results restored
            if resume is not None and kernel_index == resume.kernel_index:
                # Pick the interrupted kernel back up mid-flight: the
                # restored engine's heap and clock continue exactly where
                # the checkpoint's cycle boundary left them.
                engine = resume.engine
                scheduler = frame["scheduler"]
                sms = frame["sms"]
                memory = frame["memory"]
                guard.begin_kernel(engine, frame, kernel_index,
                                   extra_checker=checker)
                resume = None
            else:
                if persistent_memory is None:
                    memory = analytical_models[kernel_index]
                else:
                    memory = persistent_memory
                scheduler = BlockScheduler(kernel)
                # Per-cycle simulators tick the full SM array every cycle
                # (the Accel-Sim main loop); hybrid plans only build
                # occupied SMs.
                if per_cycle:
                    num_sms = self.config.num_sms
                else:
                    num_sms = min(self.config.num_sms, len(kernel.blocks))
                # Under a shard plan, references the SMs hold to modules
                # on *other* shards go through traffic-counting port
                # proxies; the raw objects are kept for engine.add,
                # isinstance dispatch, and the metrics tree.
                scheduler_ref: object = scheduler
                memory_ref: object = memory
                if shard_plan is not None:
                    sm_shard = shard_plan.shard_for(
                        class_names=("SMCore",), component="sm",
                    )
                    sched_shard = shard_plan.shard_for_module(scheduler)
                    if sched_shard != sm_shard:
                        scheduler_ref = ShardPortProxy(
                            scheduler, f"{sm_shard}->{sched_shard}:scheduler",
                            port_traffic,
                        )
                    if memory is not None:
                        mem_shard = shard_plan.shard_for_module(memory)
                        if mem_shard != sm_shard:
                            memory_ref = ShardPortProxy(
                                memory, f"{sm_shard}->{mem_shard}:memory",
                                port_traffic,
                            )
                sms = [
                    SMCore(
                        sm_id,
                        self.config,
                        scheduler_ref,
                        self._subcore_factory(memory_ref),
                        idle_tick=per_cycle,
                    )
                    for sm_id in range(num_sms)
                ]
                if shard_plan is not None:
                    engine = ShardedEngine(
                        shard_plan, allow_jump=allow_jump, start_cycle=clock,
                        mode="lockstep",
                    )
                    engine.fault_injector = fault_injector
                else:
                    engine = Engine(allow_jump=allow_jump, start_cycle=clock)
                if guard is not None:
                    frame = {
                        "persistent_memory": persistent_memory,
                        "analytical_models": analytical_models,
                        "roots": roots,
                        "kernel_results": kernel_results,
                        "profile_seconds": profile_seconds,
                        "clock": clock,
                        "scheduler": scheduler,
                        "sms": sms,
                        "memory": memory,
                        "port_traffic": port_traffic,
                    }
                    guard.begin_kernel(engine, frame, kernel_index,
                                       extra_checker=checker)
                elif checker is not None:
                    engine.attach_checker(checker)
                for sm in sms:
                    sm.attach_engine(engine)
                    engine.add(sm, start_cycle=clock)
                if isinstance(memory, DetailedMemorySystem):
                    memory.attach_engine(engine)
                    engine.add(memory, start_cycle=clock)
            end = engine.run(max_cycles=clock + max_kernel_cycles)
            end = max(end, scheduler.last_completion_cycle, *(sm.last_completion for sm in sms))
            if isinstance(engine, ShardedEngine):
                for shard, ticks in engine.stats.ticks.items():
                    shard_ticks[shard] = shard_ticks.get(shard, 0) + ticks
            kernel_results.append(
                KernelResult(
                    name=kernel.name,
                    start_cycle=clock,
                    end_cycle=end,
                    instructions=kernel.num_instructions,
                )
            )
            clock = end
            roots.append(scheduler)
            roots.extend(sms)
        wall = time.perf_counter() - started
        metrics = MetricsGatherer(roots).gather(clock) if gather_metrics else None
        sharding = None
        if shard_plan is not None:
            sharding = {
                "plan": shard_plan.describe(),
                "mode": "lockstep",
                "shard_ticks": dict(sorted(shard_ticks.items())),
                "port_traffic": dict(sorted(port_traffic.items())),
            }
        return SimulationResult(
            app_name=app.name,
            simulator_name=self.name,
            gpu_name=self.config.name,
            total_cycles=clock,
            kernels=kernel_results,
            metrics=metrics,
            wall_time_seconds=wall,
            profile_seconds=profile_seconds,
            sharding=sharding,
        )
