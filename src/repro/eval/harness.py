"""Suite evaluation harness.

Runs a set of applications through any number of simulators plus the
hardware oracle on one GPU, and aggregates the two quantities the
paper's evaluation reports: per-application cycle-prediction error
against "hardware", and per-application wall-clock speedup relative to a
baseline simulator (Accel-Sim in the paper, :class:`AccelSimLike` here).

Long sweeps fail partially, so the harness understands partial suites:
``failure_policy`` decides whether a failing (app, simulator) pair
aborts the run (``"raise"``), drops the app (``"skip"``), or records an
explicit gap (``"degrade"``), and a
:class:`~repro.resilience.journal.RunJournal` lets an interrupted sweep
resume from its completed (app, gpu, simulator) triples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.errors import SwiftSimError, WorkloadError
from repro.frontend.config import GPUConfig
from repro.guard import GuardConfig, SimulationGuard
from repro.oracle.hardware import HardwareOracle
from repro.resilience.journal import RunJournal
from repro.simulators.base import GPUSimulator, PlanSimulator
from repro.tracegen.suites import app_names, make_app
from repro.utils.stats import geomean

#: What `evaluate` does when one (app, simulator) pair fails.
FAILURE_POLICIES = ("raise", "skip", "degrade")


@dataclass(frozen=True)
class FailureRecord:
    """One (app, simulator) pair that produced no measurement."""

    app_name: str
    simulator: str
    error_type: str
    message: str

    def render(self) -> str:
        return (
            f"{self.app_name} x {self.simulator}: "
            f"{self.error_type}: {self.message}"
        )


@dataclass
class AppEvaluation:
    """One application's measurements on one GPU."""

    app_name: str
    suite: str
    oracle_cycles: int
    cycles: Dict[str, int] = field(default_factory=dict)
    wall_seconds: Dict[str, float] = field(default_factory=dict)

    def _lookup(self, table: Dict, simulator: str, what: str):
        try:
            return table[simulator]
        except KeyError:
            raise WorkloadError(
                f"no {what} recorded for simulator {simulator!r} on app "
                f"{self.app_name!r}; available: {sorted(table) or 'none'}"
            ) from None

    def has(self, simulator: str) -> bool:
        """Whether this row carries a measurement for ``simulator``."""
        return simulator in self.cycles and simulator in self.wall_seconds

    def error_pct(self, simulator: str) -> float:
        """Absolute cycle-prediction error (percent) vs the oracle."""
        predicted = self._lookup(self.cycles, simulator, "cycles")
        return 100.0 * abs(predicted - self.oracle_cycles) / self.oracle_cycles

    def signed_error_pct(self, simulator: str) -> float:
        predicted = self._lookup(self.cycles, simulator, "cycles")
        return 100.0 * (predicted - self.oracle_cycles) / self.oracle_cycles

    def speedup(self, simulator: str, baseline: str) -> float:
        """Wall-clock speedup of ``simulator`` over ``baseline``."""
        base = self._lookup(self.wall_seconds, baseline, "wall time")
        mine = self._lookup(self.wall_seconds, simulator, "wall time")
        if mine <= 0:
            raise SwiftSimError(f"non-positive wall time for {simulator}")
        return base / mine


@dataclass
class SuiteEvaluation:
    """All applications' measurements on one GPU.

    A *partial* suite (some (app, simulator) pairs failed under
    ``failure_policy="skip"``/``"degrade"``) lists its gaps in
    ``failures``; the aggregate metrics then cover only the rows that
    actually carry the requested simulator's measurements.
    """

    gpu_name: str
    scale: str
    rows: List[AppEvaluation] = field(default_factory=list)
    failures: List[FailureRecord] = field(default_factory=list)

    def simulators(self) -> List[str]:
        seen = set()
        for row in self.rows:
            seen.update(row.cycles)
        return sorted(seen)

    @property
    def is_partial(self) -> bool:
        return bool(self.failures)

    def rows_with(self, *simulators: str) -> List[AppEvaluation]:
        """Rows carrying measurements for every named simulator."""
        return [
            row for row in self.rows
            if all(row.has(simulator) for simulator in simulators)
        ]

    def _covered(self, *simulators: str) -> List[AppEvaluation]:
        rows = self.rows_with(*simulators)
        if not rows:
            raise WorkloadError(
                f"no row carries measurements for "
                f"{' and '.join(repr(s) for s in simulators)}; "
                f"available: {self.simulators() or 'none'}"
            )
        return rows

    def mean_error(self, simulator: str) -> float:
        """Mean absolute prediction error (the Fig. 4 / Fig. 6 bar metric)."""
        rows = self._covered(simulator)
        return sum(row.error_pct(simulator) for row in rows) / len(rows)

    def geomean_speedup(self, simulator: str, baseline: str) -> float:
        """Geometric-mean wall-clock speedup (the paper's headline metric)."""
        rows = self._covered(simulator, baseline)
        return geomean(row.speedup(simulator, baseline) for row in rows)

    def max_speedup(self, simulator: str, baseline: str) -> float:
        rows = self._covered(simulator, baseline)
        return max(row.speedup(simulator, baseline) for row in rows)


class EvaluationHarness:
    """Drives simulators + oracle over an application list."""

    def __init__(
        self,
        config: GPUConfig,
        scale: str = "small",
        apps: Optional[Sequence[str]] = None,
        shard_plan=None,
        fault_policy=None,
    ) -> None:
        self.config = config
        self.scale = scale
        self.app_list = list(apps) if apps is not None else app_names()
        self.oracle = HardwareOracle(config)
        #: Optional :class:`~repro.sim.shard.ShardPlan`: when set, every
        #: :class:`PlanSimulator` measurement runs on the sharded PDES
        #: engine (bit-identical to serial by the engine contract).
        self.shard_plan = shard_plan
        #: Optional :class:`~repro.sim.shardfault.ShardFaultPolicy`:
        #: when set alongside ``shard_plan``, sharded runs are
        #: supervised — chaos shard faults are retried and exhausted
        #: retries degrade to lockstep instead of failing the pair.
        self.fault_policy = fault_policy

    def evaluate(
        self,
        simulators: Dict[str, GPUSimulator],
        progress: Optional[callable] = None,
        failure_policy: str = "raise",
        journal: Optional[RunJournal] = None,
        guard: Optional["GuardConfig"] = None,
    ) -> SuiteEvaluation:
        """Run every app through the oracle and all ``simulators``.

        ``failure_policy`` governs per-(app, simulator) failures:
        ``"raise"`` propagates the first one (historical behaviour),
        ``"skip"`` drops the whole app row, ``"degrade"`` keeps the row
        with an explicit gap.  Either way every failure lands in
        ``SuiteEvaluation.failures`` — including typed in-run failures
        like :class:`~repro.errors.CycleBudgetExceeded` (a truncated
        run is a gap, never a silently-wrong measurement) and
        :class:`~repro.errors.SimulationStall`.  With a ``journal``,
        completed (app, gpu, simulator) triples are served from it and
        fresh completions appended, so an interrupted sweep resumes
        where it stopped.

        ``guard`` (a :class:`~repro.guard.GuardConfig` template) arms
        the in-simulation guard per (app, simulator) pair with a
        per-pair checkpoint directory under the template's
        ``checkpoint_dir``; pairs with an intact checkpoint auto-resume
        mid-kernel.
        """
        if failure_policy not in FAILURE_POLICIES:
            raise WorkloadError(
                f"unknown failure_policy {failure_policy!r}; "
                f"known: {FAILURE_POLICIES}"
            )
        suite = SuiteEvaluation(gpu_name=self.config.name, scale=self.scale)
        for app_name in self.app_list:
            app = make_app(app_name, scale=self.scale)
            row = AppEvaluation(
                app_name=app.name,
                suite=app.suite,
                oracle_cycles=self.oracle.measure(app),
            )
            row_failures: List[FailureRecord] = []
            for sim_name, simulator in simulators.items():
                result = (
                    journal.get(app.name, self.config.name, sim_name)
                    if journal is not None else None
                )
                if result is None:
                    try:
                        result = self._run_one(
                            simulator, sim_name, app, guard
                        )
                    except SwiftSimError as exc:
                        if failure_policy == "raise":
                            raise
                        row_failures.append(FailureRecord(
                            app_name=app.name,
                            simulator=sim_name,
                            error_type=type(exc).__name__,
                            message=str(exc),
                        ))
                        continue
                    if journal is not None:
                        # Journal triples key on the harness's name for
                        # the simulator, which may differ from the
                        # plan's internal name.
                        entry = result
                        if result.simulator_name != sim_name:
                            import copy

                            entry = copy.copy(result)
                            entry.simulator_name = sim_name
                        journal.record(entry)
                row.cycles[sim_name] = result.total_cycles
                row.wall_seconds[sim_name] = result.wall_time_seconds
            suite.failures.extend(row_failures)
            if row_failures and failure_policy == "skip":
                continue
            suite.rows.append(row)
            if progress is not None:
                progress(row)
        return suite

    def _run_one(
        self,
        simulator: GPUSimulator,
        sim_name: str,
        app,
        guard: Optional["GuardConfig"],
    ):
        """One (app, simulator) measurement, guarded when asked.

        Guarding needs the :class:`~repro.simulators.base.PlanSimulator`
        kernel-loop hooks; other :class:`GPUSimulator` implementations
        (e.g. a hardware oracle wrapper) run unguarded.
        """
        if not isinstance(simulator, PlanSimulator):
            return simulator.simulate(app, gather_metrics=False)
        kwargs = {}
        if self.shard_plan is not None:
            kwargs["shard_plan"] = self.shard_plan
            if self.fault_policy is not None:
                kwargs["fault_policy"] = self.fault_policy
        if guard is None:
            return simulator.simulate(app, gather_metrics=False, **kwargs)
        per_pair = guard
        if guard.checkpoint_dir:
            per_pair = guard.with_(checkpoint_dir=str(
                Path(guard.checkpoint_dir) / f"{app.name}_{sim_name}"
            ))
        run_guard = SimulationGuard(
            per_pair,
            app_name=app.name,
            simulator_name=sim_name,
            gpu_config=self.config,
            auto_resume=bool(per_pair.checkpoint_dir),
        )
        return simulator.simulate(
            app, gather_metrics=False, guard=run_guard, **kwargs
        )
