"""Tests for the simulation result containers."""

import pytest

from repro.simulators.results import KernelResult, SimulationResult


def make_result(**overrides):
    params = dict(
        app_name="app",
        simulator_name="sim",
        gpu_name="gpu",
        total_cycles=1000,
        kernels=[
            KernelResult("k1", start_cycle=0, end_cycle=400, instructions=300),
            KernelResult("k2", start_cycle=400, end_cycle=1000, instructions=700),
        ],
    )
    params.update(overrides)
    return SimulationResult(**params)


class TestKernelResult:
    def test_cycles_is_duration(self):
        kernel = KernelResult("k", start_cycle=100, end_cycle=350, instructions=10)
        assert kernel.cycles == 250

    def test_frozen(self):
        kernel = KernelResult("k", 0, 1, 2)
        with pytest.raises(AttributeError):
            kernel.end_cycle = 5


class TestSimulationResult:
    def test_instruction_totals(self):
        assert make_result().instructions == 1000

    def test_ipc(self):
        assert make_result().ipc == pytest.approx(1.0)

    def test_ipc_zero_cycles(self):
        assert make_result(total_cycles=0).ipc == 0.0

    def test_repr_carries_identity(self):
        text = repr(make_result())
        assert "sim" in text and "app" in text and "gpu" in text

    def test_profile_seconds_default(self):
        assert make_result().profile_seconds == 0.0
