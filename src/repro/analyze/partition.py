"""Partition manifest: propose a PDES sharding from the dataflow graphs.

Groups every :class:`~repro.sim.module.Module` subclass into shards by
union-find over the relations that *require* colocation:

* resolved non-port call edges on a clocked path (caller invokes the
  callee synchronously every cycle — splitting them would serialize the
  shards anyway);
* containment (``add_child``): a module tree ticks hierarchically, so a
  parent and its children share one clock domain by construction;
* construction: a module that builds another owns its lifecycle.

Port-contract calls (:mod:`repro.sim.ports` methods and anything marked
``# repro: port``) deliberately do **not** colocate: they are the
declared synchronization points the PDES core serializes, i.e. the only
edges allowed to cross shards.  By construction, every cross-shard call
edge in the manifest is therefore a port edge; anything else that
crosses (a direct foreign write or an unsynchronized read) lands in the
manifest's ``unsynchronized_*`` lists — the exact set the SH rules flag
and CI gates on.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Set

from repro.analyze.index import ANALYZER_VERSION, ProgramIndex
from repro.analyze.stateflow import ForeignAccess, StateFlow, build_stateflow
from repro.errors import AnalysisError, PartitionStale

#: Manifest format tag (bump on breaking schema changes).
MANIFEST_FORMAT = "repro-partition/v1"

#: Component names that belong on the compute (SM) side of the paper's
#: SM-side / memory-side decomposition, and on the memory side.
SM_SIDE = frozenset({
    "sm", "warp_scheduler", "alu_pipeline", "ldst_unit", "shared_memory",
    "frontend", "operand_collector",
})
MEM_SIDE = frozenset({"memory", "noc", "cache", "dram"})


@dataclass(frozen=True)
class PortEdge:
    """One declared synchronization edge (a port call site, per target)."""

    caller: str
    caller_method: str
    callee: str
    target: str
    from_shard: str
    to_shard: str
    path: str
    line: int

    @property
    def cross(self) -> bool:
        return self.from_shard != self.to_shard

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": "port",
            "caller": self.caller,
            "caller_method": self.caller_method,
            "callee": self.callee,
            "target": self.target,
            "from_shard": self.from_shard,
            "to_shard": self.to_shard,
            "path": self.path,
            "line": self.line,
        }


@dataclass
class Shard:
    """One proposed shard: a clock domain the PDES core may own."""

    name: str
    classes: List[str]
    components: List[str]

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "classes": self.classes,
            "components": self.components,
        }


class Partition:
    """The proposed sharding plus every edge that touches a boundary."""

    def __init__(self, flow: StateFlow) -> None:
        self.flow = flow
        graph = flow.graph
        members = sorted(
            name for name in graph.module_names if name in graph.models
        )
        parent = {name: name for name in members}

        def find(name: str) -> str:
            while parent[name] != name:
                parent[name] = parent[parent[name]]
                name = parent[name]
            return name

        def union(a: str, b: str) -> None:
            if a in parent and b in parent:
                ra, rb = find(a), find(b)
                if ra != rb:
                    parent[max(ra, rb)] = min(ra, rb)

        for cls in members:
            for site in graph.clocked_sites(cls):
                if site.kind == "port":
                    continue
                for target in site.targets:
                    union(cls, target)
            self._colocate_owned(cls, union)

        groups: Dict[str, List[str]] = {}
        for name in members:
            groups.setdefault(find(name), []).append(name)

        self.shard_of: Dict[str, str] = {}
        self.shards: List[Shard] = []
        taken: Dict[str, int] = {}
        for _, classes in sorted(groups.items()):
            classes = sorted(classes)
            components = sorted({
                self._component_of(cls) for cls in classes
            })
            name = _shard_name(components)
            taken[name] = taken.get(name, 0) + 1
            if taken[name] > 1:
                name = f"{name}-{taken[name]}"
            self.shards.append(Shard(name, classes, components))
            for cls in classes:
                self.shard_of[cls] = name

        self.edges: List[PortEdge] = []
        seen: Set[tuple] = set()
        for cls in members:
            for site in graph.clocked_sites(cls):
                if site.kind != "port":
                    continue
                for target in sorted(site.targets):
                    edge = PortEdge(
                        caller=cls,
                        caller_method=site.caller_method,
                        callee=site.callee_method,
                        target=target,
                        from_shard=self.shard_for(cls),
                        to_shard=self.shard_for(target),
                        path=site.path,
                        line=site.line,
                    )
                    key = (edge.caller, edge.callee, edge.target, edge.line)
                    if key not in seen:
                        seen.add(key)
                        self.edges.append(edge)

    # ------------------------------------------------------------------

    def shard_for(self, cls: str) -> str:
        """Shard of ``cls``; unknown classes are their own shard."""
        return self.shard_of.get(cls, cls)

    def crosses(self, cls: str, owners: FrozenSet[str]) -> List[str]:
        """Owner classes whose shard differs from ``cls``'s shard."""
        mine = self.shard_for(cls)
        return sorted(o for o in owners if self.shard_for(o) != mine)

    def _colocate_owned(self, cls: str, union) -> None:
        graph = self.flow.graph
        model = graph.models[cls]
        for method in model.info.methods.values():
            env = graph.seed_env(model, method)
            for node in ast.walk(method):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "add_child"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                ):
                    for arg in node.args:
                        types = frozenset(
                            graph.value_types(arg, model, env).direct
                        )
                        for owner in self.flow.module_owners(types):
                            union(cls, owner)
                elif (
                    isinstance(func, ast.Name)
                    and func.id in graph.module_names
                ):
                    union(cls, func.id)

    def _component_of(self, cls: str) -> str:
        info = self.flow.graph.models[cls].info
        chain = [info] + list(self.flow.index.ancestry(info))
        for entry in chain:
            for stmt in entry.node.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == "component"
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)
                ):
                    return stmt.value.value
        return cls.lower()

    # ------------------------------------------------------------------
    # the manifest document

    def manifest(self, index: ProgramIndex) -> Dict[str, object]:
        """The JSON-able partition manifest.

        Unsynchronized accesses that carry a justified ``noqa`` are
        excluded — a suppression is an explicit human sign-off that the
        alias is a designed channel, and the CI gate must not refuse a
        partition the code owners have already vouched for.
        """
        files = {source.path: source for source in index.files}

        def live(access: ForeignAccess, rule: str) -> bool:
            source = files.get(access.path)
            return source is None or not source.suppressed(access.line, rule)

        unsync_writes: List[Dict[str, object]] = []
        unsync_reads: List[Dict[str, object]] = []
        for access in self.flow.foreign:
            if access.synchronized:
                continue
            cross = self.crosses(access.cls, access.owners)
            if not cross:
                continue
            entry = {
                "class": access.cls,
                "method": access.method,
                "owners": sorted(access.owners),
                "attr": access.attr,
                "path": access.path,
                "line": access.line,
                "from_shard": self.shard_for(access.cls),
                "to_shards": sorted({self.shard_for(o) for o in cross}),
            }
            if access.kind == "write":
                if live(access, "SH501"):
                    unsync_writes.append(entry)
            else:
                writers = [
                    o for o in cross
                    if self.flow.writes_on_clock(o, access.attr)
                ]
                if writers and live(access, "SH503"):
                    unsync_reads.append(entry)

        cross_edges = [edge for edge in self.edges if edge.cross]
        source_root = default_source_root()
        return {
            "format": MANIFEST_FORMAT,
            "analyzer_version": ANALYZER_VERSION,
            "source": {
                "fingerprint": tree_fingerprint(source_root),
                "files": sum(1 for _ in source_root.rglob("*.py")),
            },
            "shards": [shard.as_dict() for shard in self.shards],
            "cross_shard_edges": [edge.as_dict() for edge in cross_edges],
            "unsynchronized_writes": unsync_writes,
            "unsynchronized_reads": unsync_reads,
            "summary": {
                "modules": len(self.shard_of),
                "shards": len(self.shards),
                "port_edges": len(self.edges),
                "cross_shard_edges": len(cross_edges),
                "unsynchronized_writes": len(unsync_writes),
                "unsynchronized_reads": len(unsync_reads),
            },
        }


def _shard_name(components: List[str]) -> str:
    comps = set(components)
    if comps and comps <= SM_SIDE:
        return "sm"
    if comps and comps <= MEM_SIDE:
        return "memory"
    if len(comps) == 1:
        return next(iter(comps))
    return "+".join(sorted(comps))


def build_partition(index: ProgramIndex) -> Partition:
    """Build (and memoize on ``index``) the proposed partition."""
    cached = index.analysis_cache.get("partition")
    if cached is None:
        cached = Partition(build_stateflow(index))
        index.analysis_cache["partition"] = cached
    return cached


def write_manifest(manifest: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
        handle.write("\n")


# ----------------------------------------------------------------------
# loading (the runtime side: the sharded engine consumes the manifest)


def default_source_root() -> Path:
    """The source tree a manifest describes: the directory holding the
    installed ``repro`` package (``src/`` in a checkout)."""
    import repro

    return Path(repro.__file__).resolve().parents[1]


def tree_fingerprint(root: Path) -> str:
    """Content fingerprint of every ``.py`` file under ``root``.

    A sha256 over the sorted ``(relative-path, sha1(text))`` pairs —
    the same per-file hash discipline the program index uses — so any
    edit, rename, addition, or deletion under the tree changes it.
    """
    root = Path(root)
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        try:
            text = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            # Unreadable file: fold the failure into the fingerprint
            # rather than silently skipping it.
            text = f"<unreadable:{rel}>"
        digest.update(rel.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(hashlib.sha1(text.encode("utf-8")).hexdigest().encode())
        digest.update(b"\n")
    return digest.hexdigest()


def load_manifest(
    path: str,
    *,
    root: Optional[Path] = None,
    allow_stale: bool = False,
) -> Dict[str, object]:
    """Load a partition manifest, refusing stale ones.

    The sharded engine trusts the manifest's cross-shard edge list
    completely, so a manifest generated from a *different* source tree
    than the one about to run must fail closed: any mismatch between
    the recorded source fingerprint and the current tree raises
    :class:`repro.errors.PartitionStale` (as does a manifest that
    predates fingerprinting).  ``allow_stale=True`` downgrades the
    check for explicitly-requested inspection workflows; the sharded
    execution paths never pass it.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except OSError as exc:
        raise AnalysisError(f"cannot read partition manifest {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != MANIFEST_FORMAT:
        raise AnalysisError(
            f"{path}: not a {MANIFEST_FORMAT} manifest "
            f"(format={manifest.get('format')!r})"
            if isinstance(manifest, dict)
            else f"{path}: not a {MANIFEST_FORMAT} manifest"
        )
    source = manifest.get("source")
    recorded = ""
    if isinstance(source, dict):
        recorded = str(source.get("fingerprint", ""))
    if not allow_stale:
        actual = tree_fingerprint(root if root is not None else default_source_root())
        if not recorded:
            raise PartitionStale(
                f"{path}: manifest carries no source fingerprint (generated "
                f"by an older analyzer); regenerate with "
                f"`repro lint src --partition-report {path}`",
                manifest_path=str(path),
                actual_fingerprint=actual,
            )
        if recorded != actual:
            raise PartitionStale(
                f"{path}: manifest is stale — it was generated from a "
                f"different source tree (recorded {recorded[:12]}…, current "
                f"{actual[:12]}…); regenerate with "
                f"`repro lint src --partition-report {path}`",
                manifest_path=str(path),
                expected_fingerprint=recorded,
                actual_fingerprint=actual,
            )
    return manifest
