"""Tests for the Accel-Sim/NVBit trace importer."""

import pytest

from repro.errors import TraceError
from repro.frontend.isa import InstKind, UnitClass
from repro.frontend.nvbit_compat import (
    export_nvbit,
    load_nvbit,
    map_sass_opcode,
    parse_nvbit,
)
from repro.simulators.swift_basic import SwiftSimBasic
from repro.tracegen.suites import make_app

from conftest import make_tiny_gpu

SAMPLE = """\
-kernel name = vecadd
-grid dim = (2,1,1)
-block dim = (64,1,1)
-shmem = 0
-nregs = 16

#BEGIN_TB
thread block = 0,0,0
warp = 0
insts = 4
0008 ffffffff 1 R4 IMAD.MOV.U32 2 R2 R3 0
0010 ffffffff 1 R5 LDG.E.SYS 1 R4 4 1 0x10000000 4
0018 ffffffff 1 R6 FFMA 2 R5 R6 0
0120 ffffffff 0 EXIT 0 0
warp = 1
insts = 2
0008 0000000f 1 R5 LDG.E.SYS 1 R4 4 0 0x20000000 0x20000080 0x20000100 0x20000180
0120 ffffffff 0 EXIT 0 0
#END_TB
#BEGIN_TB
thread block = 1,0,0
warp = 0
insts = 1
0120 ffffffff 0 EXIT 0 0
warp = 1
insts = 1
0120 ffffffff 0 EXIT 0 0
#END_TB
"""


class TestOpcodeMapping:
    def test_memory_prefixes(self):
        assert map_sass_opcode("LDG.E.SYS") == "LDG"
        assert map_sass_opcode("STG.E") == "STG"
        assert map_sass_opcode("ATOM.E.ADD") == "ATOMG"

    def test_arithmetic_prefixes(self):
        assert map_sass_opcode("IMAD.MOV.U32") == "IMAD"
        assert map_sass_opcode("FFMA") == "FFMA"
        assert map_sass_opcode("MUFU.RSQ") == "MUFU.RCP"
        assert map_sass_opcode("HMMA.16816.F32") == "HMMA"

    def test_sync_prefixes(self):
        assert map_sass_opcode("BAR.SYNC.DEFER_BLOCKING") == "BAR.SYNC"
        assert map_sass_opcode("EXIT") == "EXIT"

    def test_unknown_falls_back_to_int(self):
        assert map_sass_opcode("QSPC.E.G") == "IADD3"

    def test_unknown_strict_raises(self):
        with pytest.raises(TraceError):
            map_sass_opcode("QSPC.E.G", strict=True)


class TestParse:
    def test_structure(self):
        app = parse_nvbit(SAMPLE, app_name="vecadd")
        assert len(app.kernels) == 1
        kernel = app.kernels[0]
        assert kernel.name == "vecadd"
        assert len(kernel.blocks) == 2          # grid (2,1,1)
        assert len(kernel.blocks[0].warps) == 2  # 64 threads
        assert kernel.blocks[0].regs_per_thread == 16

    def test_instruction_translation(self):
        app = parse_nvbit(SAMPLE)
        warp0 = app.kernels[0].blocks[0].warps[0]
        imad, ldg, ffma, exit_inst = warp0.instructions
        assert imad.unit is UnitClass.INT
        assert imad.dest_regs == (4,) and imad.src_regs == (2, 3)
        assert ldg.kind is InstKind.LOAD
        assert exit_inst.kind is InstKind.EXIT

    def test_compressed_addresses_mode1(self):
        app = parse_nvbit(SAMPLE)
        ldg = app.kernels[0].blocks[0].warps[0].instructions[1]
        assert len(ldg.addresses) == 32
        assert ldg.addresses[0] == 0x10000000
        assert ldg.addresses[1] - ldg.addresses[0] == 4

    def test_explicit_addresses_mode0_with_mask(self):
        app = parse_nvbit(SAMPLE)
        ldg = app.kernels[0].blocks[0].warps[1].instructions[0]
        assert ldg.active_mask == 0xF
        assert ldg.addresses == (0x20000000, 0x20000080, 0x20000100, 0x20000180)

    def test_parsed_trace_simulates(self, tiny_gpu):
        app = parse_nvbit(SAMPLE, app_name="vecadd")
        result = SwiftSimBasic(tiny_gpu).simulate(app)
        assert result.total_cycles > 0
        assert result.metrics.instructions == app.num_instructions

    def test_missing_exit_appended(self):
        text = SAMPLE.replace(
            "insts = 1\n0120 ffffffff 0 EXIT 0 0\n#END_TB",
            "insts = 1\n0008 ffffffff 1 R4 IMAD 0 0\n#END_TB", 1,
        )
        app = parse_nvbit(text)
        last_block_warp = app.kernels[0].blocks[1].warps[0]
        assert last_block_warp.instructions[-1].kind is InstKind.EXIT

    def test_malformed_header_typed(self):
        with pytest.raises(TraceError):
            parse_nvbit("-kernel name = x\n-wrong = 1\n")

    def test_malformed_instruction_typed(self):
        broken = SAMPLE.replace("0008 ffffffff 1 R4 IMAD.MOV.U32 2 R2 R3 0",
                                "zzzz not an instruction")
        with pytest.raises(TraceError):
            parse_nvbit(broken)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_nvbit(tmp_path / "nope.traceg")


class TestExportRoundTrip:
    def test_generated_app_round_trips(self, tmp_path):
        app = make_app("atax", scale="tiny")
        path = tmp_path / "atax.traceg"
        export_nvbit(app, path)
        reloaded = load_nvbit(path, app_name=app.name)
        assert reloaded.num_instructions == app.num_instructions
        for k_orig, k_new in zip(app.kernels, reloaded.kernels):
            assert len(k_new.blocks) == len(k_orig.blocks)
            for b_orig, b_new in zip(k_orig.blocks, k_new.blocks):
                for w_orig, w_new in zip(b_orig.warps, b_new.warps):
                    for i_orig, i_new in zip(w_orig.instructions, w_new.instructions):
                        assert i_new.opcode == i_orig.opcode
                        assert i_new.addresses == i_orig.addresses
                        assert i_new.active_mask == i_orig.active_mask

    def test_round_trip_preserves_timing(self, tmp_path, tiny_gpu):
        app = make_app("gemm", scale="tiny")
        path = tmp_path / "gemm.traceg"
        export_nvbit(app, path)
        reloaded = load_nvbit(path, app_name=app.name)
        original = SwiftSimBasic(tiny_gpu).simulate(app, gather_metrics=False)
        again = SwiftSimBasic(make_tiny_gpu()).simulate(reloaded, gather_metrics=False)
        assert again.total_cycles == original.total_cycles
