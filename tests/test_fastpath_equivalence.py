"""Every hot-path optimization must be bit-invisible.

The PR 4 fast paths (engine fast dispatch, lazy cache sets + memoized
analytical profiles, trace memoization) all sit behind explicit flags in
:mod:`repro.utils.fastpath`.  This suite drives the same differential
machinery :mod:`repro.check` uses for jump-vs-per-cycle shadowing to
prove that, flags on vs flags off, every simulator produces identical
cycle counts, kernel boundaries, committed instructions and
:class:`~repro.sim.metrics.MetricsGatherer` counters — here with an
*empty* ignore set, because both runs use the same clocking.
"""

import pytest

from repro.check.shadow import _compare_results
from repro.simulators.accel_like import AccelSimLike
from repro.simulators.swift_basic import SwiftSimBasic
from repro.simulators.swift_memory import SwiftSimMemory
from repro.tracegen.suites import make_app
from repro.utils.fastpath import FastPaths, fastpaths, get_fastpaths, set_fastpaths

from conftest import make_tiny_gpu

APPS = ("gemm", "bfs", "sm")
SIMULATORS = (AccelSimLike, SwiftSimBasic, SwiftSimMemory)

NOTHING_IGNORED = frozenset()


def _run(simulator_cls, app, **flag_overrides):
    with fastpaths(**flag_overrides):
        return simulator_cls(make_tiny_gpu()).simulate(app)


@pytest.mark.parametrize("simulator_cls", SIMULATORS,
                         ids=lambda cls: cls.__name__)
@pytest.mark.parametrize("app_name", APPS)
def test_all_fastpaths_bit_identical(simulator_cls, app_name):
    """Flags all-on vs all-off: byte-for-byte identical observables."""
    app = make_app(app_name, scale="tiny")
    on = _run(simulator_cls, app,
              fast_dispatch=True, cache_memo=True, trace_cache=True)
    off = _run(simulator_cls, app,
               fast_dispatch=False, cache_memo=False, trace_cache=False)
    subject = f"{simulator_cls.__name__} x {app_name}"
    findings = _compare_results(subject, on, off,
                                ignore_counters=NOTHING_IGNORED)
    assert not findings, "\n".join(f.message for f in findings)
    assert on.total_cycles == off.total_cycles


@pytest.mark.parametrize("flag", ["fast_dispatch", "cache_memo", "trace_cache"])
@pytest.mark.parametrize("simulator_cls", SIMULATORS,
                         ids=lambda cls: cls.__name__)
def test_each_flag_individually_bit_identical(simulator_cls, flag):
    """Each optimization alone (others off) must also be invisible, so a
    future equivalence break is attributable to one flag."""
    app = make_app("gemm", scale="tiny")
    base = dict(fast_dispatch=False, cache_memo=False, trace_cache=False)
    off = _run(simulator_cls, app, **base)
    on = _run(simulator_cls, app, **{**base, flag: True})
    findings = _compare_results(
        f"{simulator_cls.__name__} [{flag}]", on, off,
        ignore_counters=NOTHING_IGNORED,
    )
    assert not findings, "\n".join(f.message for f in findings)


def test_trace_generation_identical_with_and_without_memo():
    """trace_cache must only cache — a memoized trace equals a fresh one."""
    with fastpaths(trace_cache=False):
        fresh = make_app("bfs", scale="tiny")
    with fastpaths(trace_cache=True):
        cached_a = make_app("bfs", scale="tiny")
        cached_b = make_app("bfs", scale="tiny")
    # Kernel generation ran once (shared kernel objects), but each call
    # gets its own ApplicationTrace wrapper so one caller mutating its
    # kernels list cannot poison another's app.
    assert cached_a is not cached_b
    assert all(ka is kb for ka, kb in zip(cached_a.kernels, cached_b.kernels))
    assert fresh is not cached_a
    assert fresh.num_instructions == cached_a.num_instructions
    assert [k.name for k in fresh.kernels] == [k.name for k in cached_a.kernels]
    for ours, theirs in zip(fresh.kernels, cached_a.kernels):
        assert ours.num_instructions == theirs.num_instructions
        assert len(ours.blocks) == len(theirs.blocks)


def test_trace_memo_does_not_leak_mutations():
    """Regression for cross-caller poisoning: appending to one returned
    app's kernels list must not corrupt later make_app calls."""
    with fastpaths(trace_cache=True):
        poisoned = make_app("sm", scale="tiny")
        count = len(poisoned.kernels)
        poisoned.kernels.append(lambda: None)
        clean = make_app("sm", scale="tiny")
    assert len(clean.kernels) == count
    assert all(not callable(k) or hasattr(k, "name") for k in clean.kernels)


def test_engine_config_flag_overrides_global():
    """EngineConfig.fast_dispatch pins the dispatch loop regardless of the
    process-wide flag (None defers to the global)."""
    from repro.sim.engine import EngineConfig

    explicit_off = EngineConfig(fast_dispatch=False)
    explicit_on = EngineConfig(fast_dispatch=True)
    deferred = EngineConfig()
    assert explicit_off.fast_dispatch is False
    assert explicit_on.fast_dispatch is True
    assert deferred.fast_dispatch is None


def test_fastpaths_context_manager_restores():
    before = get_fastpaths()
    with fastpaths(fast_dispatch=False):
        assert get_fastpaths().fast_dispatch is False
    assert get_fastpaths() == before


def test_set_fastpaths_returns_previous():
    before = get_fastpaths()
    try:
        previous = set_fastpaths(FastPaths.all_off())
        assert previous == before
        assert get_fastpaths() == FastPaths.all_off()
    finally:
        set_fastpaths(before)
