"""Unit tests for repro.utils (bitops, stats, rng)."""

import math

import pytest

from repro.utils.bitops import (
    align_down,
    align_up,
    bit_count,
    ceil_div,
    full_mask,
    is_pow2,
    log2_exact,
    mask_iter,
)
from repro.utils.rng import derive_seed, stable_hash
from repro.utils.stats import geomean, mean_abs_pct_error, pct_error, summarize


class TestBitops:
    def test_is_pow2_true_cases(self):
        assert all(is_pow2(1 << n) for n in range(20))

    def test_is_pow2_false_cases(self):
        assert not is_pow2(0)
        assert not is_pow2(-4)
        assert not is_pow2(3)
        assert not is_pow2(12)

    def test_log2_exact(self):
        assert log2_exact(1) == 0
        assert log2_exact(128) == 7

    def test_log2_exact_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            log2_exact(100)

    def test_align_down(self):
        assert align_down(0x12345, 0x100) == 0x12300
        assert align_down(0x100, 0x100) == 0x100

    def test_align_up(self):
        assert align_up(0x101, 0x100) == 0x200
        assert align_up(0x100, 0x100) == 0x100

    def test_align_rejects_non_pow2_granularity(self):
        with pytest.raises(ValueError):
            align_down(10, 3)
        with pytest.raises(ValueError):
            align_up(10, 6)

    def test_ceil_div(self):
        assert ceil_div(0, 4) == 0
        assert ceil_div(1, 4) == 1
        assert ceil_div(4, 4) == 1
        assert ceil_div(5, 4) == 2

    def test_ceil_div_rejects_bad_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)

    def test_full_mask(self):
        assert full_mask(0) == 0
        assert full_mask(32) == 0xFFFFFFFF

    def test_bit_count(self):
        assert bit_count(0) == 0
        assert bit_count(0xFFFFFFFF) == 32
        assert bit_count(0b1010101) == 4

    def test_mask_iter(self):
        assert list(mask_iter(0b10110)) == [1, 2, 4]
        assert list(mask_iter(0)) == []


class TestStats:
    def test_geomean_single(self):
        assert geomean([7.0]) == pytest.approx(7.0)

    def test_geomean_known(self):
        assert geomean([1, 100]) == pytest.approx(10.0)

    def test_geomean_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_pct_error_signed(self):
        assert pct_error(110, 100) == pytest.approx(10.0)
        assert pct_error(90, 100) == pytest.approx(-10.0)

    def test_pct_error_rejects_zero_actual(self):
        with pytest.raises(ValueError):
            pct_error(1, 0)

    def test_mean_abs_pct_error(self):
        pairs = [(110, 100), (80, 100)]
        assert mean_abs_pct_error(pairs) == pytest.approx(15.0)

    def test_summarize(self):
        stats = summarize([4.0, 1.0, 3.0, 2.0])
        assert stats["min"] == 1.0
        assert stats["max"] == 4.0
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["median"] == pytest.approx(2.5)

    def test_summarize_odd_median(self):
        assert summarize([3.0, 1.0, 2.0])["median"] == 2.0

    def test_summarize_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])


class TestRNG:
    def test_stable_hash_is_stable(self):
        assert stable_hash("swift-sim") == stable_hash("swift-sim")

    def test_stable_hash_differs(self):
        assert stable_hash("a") != stable_hash("b")

    def test_derive_seed_deterministic(self):
        assert derive_seed("app", 1, 2) == derive_seed("app", 1, 2)

    def test_derive_seed_sensitive_to_each_label(self):
        base = derive_seed("app", 1, 2)
        assert derive_seed("app", 1, 3) != base
        assert derive_seed("app", 2, 2) != base
        assert derive_seed("other", 1, 2) != base

    def test_derive_seed_fits_in_63_bits(self):
        for label in range(50):
            assert 0 <= derive_seed(label) < (1 << 63)
