"""Block Scheduler: distributes thread blocks (CTAs) to SMs.

The SMs *pull* work: an SM with free resources asks for the next block,
which keeps the scheduler trivially deterministic and avoids any
cross-module ordering concerns.  The scheduler also owns kernel-level
completion accounting — the paper's Metrics Gatherer reads "total
simulation cycles from Block Scheduler after all blocks have completed
execution" (§III-C).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.frontend.trace import BlockTrace, KernelTrace
from repro.sim.module import ModelLevel, Module
from repro.sim.ports import BlockSource


class BlockScheduler(Module, BlockSource):
    """FIFO block dispatcher with completion accounting."""

    component = "block_scheduler"
    level = ModelLevel.CYCLE_ACCURATE

    def __init__(self, kernel: KernelTrace, name: str = "block_scheduler") -> None:
        super().__init__(name)
        self.kernel = kernel
        self._queue: Deque[BlockTrace] = deque(kernel.blocks)
        self._completed = 0
        self.last_completion_cycle = 0

    def reset(self) -> None:
        super().reset()
        self._queue = deque(self.kernel.blocks)
        self._completed = 0
        self.last_completion_cycle = 0

    @property
    def blocks_remaining(self) -> int:
        return len(self._queue)

    @property
    def all_done(self) -> bool:  # repro: port
        return self._completed == len(self.kernel.blocks)

    def peek_block(self) -> Optional[BlockTrace]:  # repro: port
        """Next pending block without dispatching it (SMs check fit first)."""
        if not self._queue:
            return None
        return self._queue[0]

    def next_block(self, sm_id: int) -> Optional[BlockTrace]:
        """Hand the next pending block to ``sm_id`` (None when drained)."""
        if not self._queue:
            return None
        block = self._queue.popleft()
        self.counters.add("blocks_dispatched")
        return block

    def block_done(self, sm_id: int, block: BlockTrace, cycle: int) -> None:
        self._completed += 1
        self.counters.add("blocks_completed")
        if cycle > self.last_completion_cycle:
            self.last_completion_cycle = cycle
