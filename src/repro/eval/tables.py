"""Table I and Table II regeneration.

Both tables are configuration listings; regenerating them verifies that
the presets carry exactly the parameters the paper reports.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.frontend.config import GPUConfig
from repro.frontend.isa import UnitClass
from repro.frontend.presets import RTX_2080_TI, RTX_3060, RTX_3090


def _format_mb(size_bytes: int) -> str:
    mb = size_bytes / (1024 * 1024)
    return f"{mb:.1f}MB" if mb != int(mb) else f"{int(mb)}MB"


def table1_rows(gpus: Sequence[GPUConfig] = (RTX_2080_TI, RTX_3060, RTX_3090)) -> List[Dict[str, str]]:
    """Table I as data: one dict per attribute row."""
    return [
        {"attribute": "NVIDIA GPUs", **{g.name: g.name for g in gpus}},
        {"attribute": "Architecture", **{g.name: g.architecture for g in gpus}},
        {"attribute": "Graphics Processor", **{g.name: g.graphics_processor for g in gpus}},
        {"attribute": "SMs", **{g.name: str(g.num_sms) for g in gpus}},
        {"attribute": "CUDA Cores", **{g.name: str(g.cuda_cores) for g in gpus}},
        {"attribute": "L2 Cache", **{g.name: _format_mb(g.l2.size_bytes) for g in gpus}},
    ]


def render_table1(gpus: Sequence[GPUConfig] = (RTX_2080_TI, RTX_3060, RTX_3090)) -> str:
    """Render Table I (Comparison of three NVIDIA GPUs)."""
    rows = table1_rows(gpus)
    names = [g.name for g in gpus]
    widths = [max(len(r["attribute"]) for r in rows)] + [
        max(len(name), max(len(r[name]) for r in rows)) for name in names
    ]
    lines = ["TABLE I — COMPARISON OF THREE NVIDIA GPUS"]
    header = ["".ljust(widths[0])] + [n.ljust(w) for n, w in zip(names, widths[1:])]
    lines.append(" | ".join(header))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows[1:]:
        cells = [row["attribute"].ljust(widths[0])] + [
            row[name].ljust(w) for name, w in zip(names, widths[1:])
        ]
        lines.append(" | ".join(cells))
    return "\n".join(lines)


def table2_rows(gpu: GPUConfig = RTX_2080_TI) -> List[Dict[str, str]]:
    """Table II as data: (parameter, value) rows."""
    sm = gpu.sm
    units = sm.units_by_class

    def lanes(unit: UnitClass) -> str:
        count = units[unit].lanes
        return f"{count:g}x"

    l1, l2 = gpu.l1, gpu.l2
    return [
        {"parameter": "# SMs", "value": str(gpu.num_sms)},
        {"parameter": "# Sub-Cores/SM", "value": str(sm.sub_cores)},
        {
            "parameter": "Warp Scheduler",
            "value": f"{sm.schedulers_per_subcore}x, {sm.scheduler_policy}",
        },
        {
            "parameter": "Exec Units",
            "value": (
                f"INT:{lanes(UnitClass.INT)}, SP:{lanes(UnitClass.SP)}, "
                f"DP:{lanes(UnitClass.DP)}, SFU:{lanes(UnitClass.SFU)}"
            ),
        },
        {"parameter": "LD/ST Units", "value": f"{sm.ldst_units}x"},
        {
            "parameter": "L1 in SM",
            "value": (
                f"Sectored, {'streaming, ' if l1.streaming else ''}"
                f"{'write-back' if l1.write_back else 'write-through'}, "
                f"{l1.banks} banks, {l1.line_bytes} B/line, "
                f"{l1.sector_bytes} B/sector, {l1.mshr_entries} MSHR entries, "
                f"{l1.mshr_max_merge} maximum merge / MSHR, {l1.replacement}, "
                f"{l1.latency} cycles"
            ),
        },
        {
            "parameter": "L2 Cache",
            "value": (
                f"Sectored, {'write-back' if l2.write_back else 'write-through'}, "
                f"{l2.line_bytes}B/line, {l2.sector_bytes}B/sector, "
                f"{l2.mshr_entries} MSHR entries, {l2.mshr_max_merge} maximum "
                f"merge/MSHR, {l2.replacement}, {l2.latency} cycles"
            ),
        },
        {
            "parameter": "Memory",
            "value": f"{gpu.memory_partitions} memory partitions, {gpu.dram.latency} cycles",
        },
    ]


def render_table2(gpu: GPUConfig = RTX_2080_TI) -> str:
    """Render Table II (NVIDIA RTX 2080 Ti GPU configuration)."""
    rows = table2_rows(gpu)
    width = max(len(r["parameter"]) for r in rows)
    lines = [f"TABLE II — {gpu.name.upper()} GPU CONFIGURATION"]
    for row in rows:
        lines.append(f"{row['parameter'].ljust(width)} | {row['value']}")
    return "\n".join(lines)
