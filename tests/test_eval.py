"""Tests for the evaluation harness, tables, and figure generators."""

import pytest

from repro.eval.harness import AppEvaluation, EvaluationHarness, SuiteEvaluation
from repro.eval.tables import render_table1, render_table2, table1_rows, table2_rows
from repro.eval.figures import BASIC, MEMORY, ACCEL, figure5
from repro.simulators.accel_like import AccelSimLike
from repro.simulators.swift_basic import SwiftSimBasic

from conftest import make_tiny_gpu


class TestTables:
    def test_table1_matches_paper_values(self):
        text = render_table1()
        for expected in ("68", "28", "82", "4352", "3584", "10496",
                         "5.5MB", "3MB", "6MB", "Turing", "Ampere",
                         "TU102", "GA106", "GA102"):
            assert expected in text

    def test_table2_matches_paper_values(self):
        text = render_table2()
        for expected in ("68", "GTO", "INT:16x", "SP:16x", "DP:0.5x", "SFU:4x",
                         "256 MSHR", "192 MSHR", "LRU", "32 cycles", "188 cycles",
                         "22 memory partitions", "227 cycles", "write-through",
                         "write-back", "streaming"):
            assert expected in text

    def test_table_rows_structured(self):
        rows = table1_rows()
        assert rows[3]["attribute"] == "SMs"
        assert rows[3]["RTX 2080 Ti"] == "68"
        params = {r["parameter"] for r in table2_rows()}
        assert {"# SMs", "Exec Units", "L1 in SM", "L2 Cache", "Memory"} <= params


class TestHarness:
    def test_evaluate_two_simulators(self):
        gpu = make_tiny_gpu()
        harness = EvaluationHarness(gpu, scale="tiny", apps=["gemm", "sm"])
        suite = harness.evaluate(
            {ACCEL: AccelSimLike(gpu), BASIC: SwiftSimBasic(gpu)}
        )
        assert len(suite.rows) == 2
        assert suite.simulators() == sorted([ACCEL, BASIC])
        for row in suite.rows:
            assert row.oracle_cycles > 0
            assert row.error_pct(BASIC) >= 0
            assert row.speedup(BASIC, ACCEL) > 0

    def test_mean_error_and_geomean(self):
        suite = SuiteEvaluation(gpu_name="g", scale="tiny")
        suite.rows = [
            AppEvaluation("a", "s", 100, {"x": 110, "y": 100}, {"x": 1.0, "y": 2.0}),
            AppEvaluation("b", "s", 200, {"x": 160, "y": 200}, {"x": 1.0, "y": 8.0}),
        ]
        assert suite.mean_error("x") == pytest.approx((10 + 20) / 2)
        assert suite.mean_error("y") == 0.0
        assert suite.geomean_speedup("y", "x") == pytest.approx(0.25)
        assert suite.max_speedup("x", "y") == pytest.approx(8.0)

    def test_signed_error(self):
        row = AppEvaluation("a", "s", 100, {"x": 80}, {"x": 1.0})
        assert row.signed_error_pct("x") == pytest.approx(-20.0)
        assert row.error_pct("x") == pytest.approx(20.0)


class TestFigureChart:
    def test_figure4_render_chart(self, monkeypatch):
        import repro.eval.figures as figures
        monkeypatch.setattr(figures, "RTX_2080_TI", make_tiny_gpu())
        data = figures.figure4(scale="tiny", apps=["gemm", "sm"])
        chart = data.render_chart()
        assert "prediction error" in chart
        assert "#=basic" in chart and "*=memory" in chart
        assert "speedup over baseline" in chart
        assert "(log scale)" in chart


class TestReport:
    def test_generate_report_structure(self, monkeypatch):
        import repro.eval.figures as figures
        tiny = make_tiny_gpu()
        monkeypatch.setattr(figures, "RTX_2080_TI", tiny)
        monkeypatch.setattr(figures, "RTX_3060", make_tiny_gpu(name="TestGPU-B"))
        monkeypatch.setattr(figures, "RTX_3090", make_tiny_gpu(name="TestGPU-C"))
        from repro.eval.report import generate_report
        text = generate_report(scale="tiny", apps=["gemm", "sm"], workers=1)
        for fragment in (
            "# EXPERIMENTS",
            "Table I / Table II",
            "Figure 4",
            "Figure 5",
            "Figure 6",
            "| mean error, Swift-Sim-Basic | 22.6% |",
            "82.6x",
            "211.2x",
            "Ablations",
        ):
            assert fragment in text, fragment


class TestFigure5:
    def test_contributions_compose(self):
        gpu = make_tiny_gpu()
        data = figure5(gpu, scale="tiny", apps=["gemm", "sm"], workers=2)
        assert data.basic_single > 0
        assert data.memory_single > 0
        assert data.memory_over_basic == pytest.approx(
            data.memory_single / data.basic_single
        )
        assert data.basic_total == pytest.approx(
            data.basic_single * data.parallel_gain_basic
        )
        text = data.render()
        assert "FIGURE 5" in text and "Parallel gain" in text
