"""Tests for the sweep service (repro.serve): keys, store, breaker,
admission, journal, and the service ladder driven in-process through
injectable runners — plus one end-to-end socket round trip.
"""

import asyncio
import json
import os

import pytest

from repro.errors import (
    CircuitOpen,
    ConfigError,
    QueueSaturated,
    ServeError,
    SimulationError,
)
from repro.frontend.config_io import gpu_config_to_dict
from repro.serve.admission import AdmissionController, CostModel
from repro.serve.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerBoard,
    CircuitBreaker,
)
from repro.serve.client import grid_points, parse_grid_spec
from repro.serve.jobs import JobRequest
from repro.serve.journal import ServeJournal
from repro.serve.keys import (
    canonical_json,
    config_hash,
    job_key,
    trace_fingerprint,
    workload_hash,
)
from repro.serve.service import SweepService
from repro.serve.store import MAGIC, ResultStore
from repro.tracegen.suites import make_app

from conftest import make_tiny_gpu


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# keys


class TestKeys:
    def test_canonical_json_sorts_keys_at_depth(self):
        a = canonical_json({"b": {"y": 1, "x": 2}, "a": 3})
        b = canonical_json({"a": 3, "b": {"x": 2, "y": 1}})
        assert a == b

    def test_integral_floats_collapse_to_ints(self):
        assert canonical_json({"v": 2.0}) == canonical_json({"v": 2})

    def test_non_integral_floats_survive(self):
        assert canonical_json({"v": 0.5}) != canonical_json({"v": 0})
        assert "0.5" in canonical_json({"v": 0.5})

    def test_nan_and_inf_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ServeError, match="non-finite"):
                canonical_json({"v": bad})

    def test_non_string_keys_rejected(self):
        with pytest.raises(ServeError, match="non-string dict key"):
            canonical_json({1: "x"})

    def test_config_hash_accepts_config_and_dict(self):
        gpu = make_tiny_gpu()
        assert config_hash(gpu) == config_hash(gpu_config_to_dict(gpu))

    def test_config_hash_distinguishes_configs(self):
        gpu = make_tiny_gpu()
        other = make_tiny_gpu(num_sms=gpu.num_sms + 1)
        assert config_hash(gpu) != config_hash(other)

    def test_trace_fingerprint_stable_and_content_sensitive(self):
        fp1 = trace_fingerprint(make_app("gemm", scale="tiny"))
        fp2 = trace_fingerprint(make_app("gemm", scale="tiny"))
        assert fp1 == fp2
        assert fp1["instructions"] > 0
        other = trace_fingerprint(make_app("bfs", scale="tiny"))
        assert fp1["digest"] != other["digest"]

    def test_workload_hash_order_invariant_but_scale_sensitive(self):
        assert (workload_hash(["bfs", "gemm"], "tiny")
                == workload_hash(["gemm", "bfs"], "tiny"))
        assert (workload_hash(["bfs"], "tiny")
                != workload_hash(["bfs"], "small"))

    def test_job_key_depends_on_every_component(self):
        base = job_key("t1", "c1", "swift-basic")
        assert base != job_key("t2", "c1", "swift-basic")
        assert base != job_key("t1", "c2", "swift-basic")
        assert base != job_key("t1", "c1", "interval")


# ----------------------------------------------------------------------
# store


KEY = "ab" + "0" * 62


class TestResultStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        payload = {"degraded": False, "result": {"total_cycles": 42}}
        store.put(KEY, payload)
        assert store.get(KEY) == payload
        assert KEY in store
        assert len(store) == 1
        assert store.keys() == [KEY]

    def test_miss_returns_none(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        assert store.get(KEY) is None

    def test_refuses_degraded_payload(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        with pytest.raises(ServeError, match="degraded"):
            store.put(KEY, {"degraded": True, "result": {}})
        assert len(store) == 0

    def test_torn_entry_is_a_miss_and_evicted(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        path = store.put(KEY, {"degraded": False,
                               "result": {"total_cycles": 7}})
        raw = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(raw[:len(raw) // 2])
        assert store.get(KEY) is None
        assert not os.path.exists(path)

    def test_bitflip_detected_by_frame(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        path = store.put(KEY, {"degraded": False,
                               "result": {"total_cycles": 7}})
        raw = bytearray(open(path, "rb").read())
        raw[-3] ^= 0xFF  # flip a payload byte; frame sha256 must catch it
        with open(path, "wb") as handle:
            handle.write(bytes(raw))
        assert store.get(KEY) is None

    def test_foreign_magic_rejected(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        path = store.put(KEY, {"degraded": False, "result": {}})
        raw = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(b"NOTMAGIC1\n" + raw[len(MAGIC):])
        assert store.get(KEY) is None

    def test_degraded_bytes_on_disk_never_served(self, tmp_path):
        # Even if a foreign writer bypasses put(), the read side refuses.
        store = ResultStore(str(tmp_path / "store"))
        path = store.put(KEY, {"degraded": False, "result": {}})
        import hashlib
        body = json.dumps({"degraded": True, "result": {}},
                          sort_keys=True, separators=(",", ":")).encode()
        with open(path, "wb") as handle:
            handle.write(MAGIC.encode())
            handle.write((json.dumps({"key": KEY}) + "\n").encode())
            handle.write(
                f"{len(body)} {hashlib.sha256(body).hexdigest()}\n".encode()
            )
            handle.write(body)
        assert store.get(KEY) is None

    def test_malformed_key_rejected(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        with pytest.raises(ServeError, match="malformed store key"):
            store.get("../../etc/passwd")


# ----------------------------------------------------------------------
# breaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown=5.0, clock=clock)
        assert breaker.state == CLOSED
        for __ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_half_open_single_probe_then_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.now = 5.0
        assert breaker.allow()          # the probe
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()      # only one probe at a time
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens_for_full_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        clock.now = 5.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.now = 9.9
        assert not breaker.allow()
        clock.now = 10.0
        assert breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_board_keys_by_simulator_and_region(self):
        board = BreakerBoard(threshold=1, clock=FakeClock())
        a = board.breaker_for("swift-basic", "ab" + "0" * 62)
        b = board.breaker_for("swift-basic", "ab" + "f" * 62)
        c = board.breaker_for("swift-basic", "cd" + "0" * 62)
        d = board.breaker_for("interval", "ab" + "0" * 62)
        assert a is b           # same region
        assert a is not c       # different region
        assert a is not d       # different simulator
        a.record_failure()
        assert board.snapshot() == {
            "interval/ab": "closed",
            "swift-basic/ab": "open",
            "swift-basic/cd": "closed",
        }


# ----------------------------------------------------------------------
# admission


class TestAdmission:
    def test_depth_bound(self):
        admission = AdmissionController(max_depth=2,
                                        max_pending_seconds=1e9)
        admission.admit("swift-basic", 100)
        admission.admit("swift-basic", 100)
        with pytest.raises(QueueSaturated) as excinfo:
            admission.admit("swift-basic", 100)
        assert excinfo.value.kind == "queue_saturated"
        assert excinfo.value.depth == 2

    def test_cost_bound_scales_with_simulator(self):
        model = CostModel(coefficients={"slow": 1.0, "fast": 1e-9},
                          overhead_seconds=0.0)
        admission = AdmissionController(model, max_depth=100,
                                        max_pending_seconds=10.0)
        admission.admit("slow", 8)           # 8 estimated seconds queued
        with pytest.raises(QueueSaturated):
            admission.admit("slow", 8)       # would be 16 > 10
        for __ in range(50):                 # cheap jobs still admitted
            admission.admit("fast", 8)

    def test_empty_queue_always_admits_one(self):
        model = CostModel(coefficients={"huge": 1e6},
                          overhead_seconds=0.0)
        admission = AdmissionController(model, max_pending_seconds=1.0)
        cost = admission.admit("huge", 1000)  # over budget, but alone
        assert cost > 1.0
        admission.release(cost)
        assert admission.depth == 0
        assert admission.pending_seconds == 0.0

    def test_release_rebalances(self):
        admission = AdmissionController(max_depth=1)
        cost = admission.admit("swift-basic", 10)
        with pytest.raises(QueueSaturated):
            admission.admit("swift-basic", 10)
        admission.release(cost)
        admission.admit("swift-basic", 10)

    def test_calibration_from_baseline_records(self):
        baseline = {"macro": {
            "s/a/tiny": {"simulator": "s", "app": "a", "scale": "tiny",
                         "wall_seconds": 2.0},
            "s/b/tiny": {"simulator": "s", "app": "b", "scale": "tiny",
                         "wall_seconds": 4.0},
        }}
        model = CostModel.from_baseline(
            baseline, {"a/tiny": 100, "b/tiny": 100}
        )
        # mean of 2/100 and 4/100
        assert model.coefficients["s"] == pytest.approx(0.03)
        # uncalibrated simulators keep their defaults
        assert model.coefficients["interval"] == CostModel.DEFAULTS["interval"]


# ----------------------------------------------------------------------
# serve journal


class TestServeJournal:
    def test_pending_tracks_unsettled_jobs(self, tmp_path):
        path = str(tmp_path / "serve.journal")
        journal = ServeJournal.create(path)
        journal.record_job("k1", {"app": "bfs"})
        journal.record_job("k2", {"app": "gemm"})
        journal.record_done("k1", "stored")
        journal.close()

        loaded = ServeJournal.load(path)
        assert loaded.pending() == [{"app": "gemm"}]
        assert loaded.unsettled("k2")
        assert not loaded.unsettled("k1")
        assert loaded.settled() == {"k1": "stored"}

    def test_torn_tail_dropped_on_load(self, tmp_path):
        path = str(tmp_path / "serve.journal")
        journal = ServeJournal.create(path)
        journal.record_job("k1", {"app": "bfs"})
        journal.record_done("k1", "stored")
        journal.close()
        with open(path, "a") as handle:
            handle.write('{"kind": "done", "key": "k1", "sta')  # torn

        loaded = ServeJournal.load(path)
        assert loaded.settled() == {"k1": "stored"}
        loaded.record_job("k2", {"app": "gemm"})  # truncates the tear
        loaded.close()
        reloaded = ServeJournal.load(path)
        assert reloaded.pending() == [{"app": "gemm"}]

    def test_rejects_wrong_journal_kind(self, tmp_path):
        from repro.resilience.journal import RunJournal

        path = str(tmp_path / "run.journal")
        RunJournal.create(path, gpu_name="g", scale="tiny").close()
        with pytest.raises(SimulationError, match="journal"):
            ServeJournal.load(path)

    def test_rejects_unknown_done_status(self, tmp_path):
        journal = ServeJournal.create(str(tmp_path / "j"))
        with pytest.raises(ValueError, match="unknown done status"):
            journal.record_done("k", "vaporized")


# ----------------------------------------------------------------------
# service ladder (in-process, injectable runners)


def make_service(tmp_path, **kwargs):
    store = ResultStore(str(tmp_path / "store"))
    journal = ServeJournal.create(str(tmp_path / "serve.journal"))
    return SweepService(store, journal, **kwargs), store, journal


def exact_result(cycles=100):
    return {"total_cycles": cycles, "kernels": [], "app_name": "gemm",
            "simulator_name": "swift-basic", "gpu_name": "g"}


REQUEST = {"app": "gemm", "scale": "tiny", "simulator": "swift-basic"}


class TestServiceLadder:
    def test_exact_then_cached(self, tmp_path):
        calls = []

        def runner(request, identity):
            calls.append(identity["key"])
            return exact_result()

        service, store, __ = make_service(tmp_path, runner=runner)

        async def scenario():
            first = await service.submit_request(dict(REQUEST))
            second = await service.submit_request(dict(REQUEST))
            return first, second

        first, second = run(scenario())
        assert first["status"] == "ok" and not first["cached"]
        assert not first["degraded"]
        assert second["cached"] and second["result"] == first["result"]
        assert len(calls) == 1
        assert len(store) == 1
        assert service.stats.hits == 1

    def test_identical_inflight_requests_deduped(self, tmp_path):
        started = asyncio.Event()
        release = asyncio.Event()

        def runner(request, identity):
            return exact_result()

        service, __, __ = make_service(tmp_path)

        async def gated_runner(request, identity):
            started.set()
            await release.wait()
            return exact_result()

        # Wrap the executor hop: patch _runner to a sync fn is the normal
        # path; for dedupe we need to hold the first request open, so
        # drive _admit_and_run through an async shim.
        original = service._admit_and_run

        async def slow_admit(request, identity):
            started.set()
            await release.wait()
            return await original(request, identity)

        service._runner = runner
        service._admit_and_run = slow_admit

        async def scenario():
            first = asyncio.create_task(
                service.submit_request(dict(REQUEST))
            )
            await started.wait()
            second = asyncio.create_task(
                service.submit_request(dict(REQUEST))
            )
            await asyncio.sleep(0)  # let the second reach the dedupe rung
            release.set()
            return await asyncio.gather(first, second)

        first, second = run(scenario())
        assert first["status"] == second["status"] == "ok"
        assert service.stats.deduped == 1
        assert service.stats.executed == 1

    def test_failure_degrades_with_tags_and_no_cache_write(self, tmp_path):
        def failing(request, identity):
            raise SimulationError("engine wedged")

        def analytic(request, identity):
            return exact_result(cycles=90)

        service, store, journal = make_service(
            tmp_path, runner=failing, degraded_runner=analytic,
        )
        response = run(service.submit_request(dict(REQUEST)))
        assert response["status"] == "ok"
        assert response["degraded"] is True
        assert response["error_bound_pct"] > 0
        assert response["error_mean_pct"] > 0
        assert len(store) == 0          # degraded never cached
        assert journal.settled()[response["key"]] == "degraded"
        assert service.stats.degraded == 1

    def test_failure_without_degradation_is_typed(self, tmp_path):
        def failing(request, identity):
            raise SimulationError("engine wedged")

        service, store, journal = make_service(tmp_path, runner=failing)
        request = dict(REQUEST)
        request["allow_degraded"] = False
        response = run(service.submit_request(request))
        assert response["status"] == "error"
        assert response["degraded"] is False
        assert "engine wedged" in response["message"]
        assert len(store) == 0
        assert journal.settled()[response["key"]] == "failed"

    def test_degradation_unavailable_is_typed(self, tmp_path):
        def failing(request, identity):
            raise SimulationError("engine wedged")

        def no_numpy(request, identity):
            raise SimulationError("numpy unavailable")

        service, __, __ = make_service(
            tmp_path, runner=failing, degraded_runner=no_numpy,
        )
        response = run(service.submit_request(dict(REQUEST)))
        assert response["status"] == "error"
        assert response["kind"] == "degradation_unavailable"

    def test_open_breaker_sheds_to_degraded(self, tmp_path):
        clock = FakeClock()

        def failing(request, identity):
            raise SimulationError("boom")

        def analytic(request, identity):
            return exact_result(cycles=90)

        service, store, __ = make_service(
            tmp_path, runner=failing, degraded_runner=analytic,
            breakers=BreakerBoard(threshold=1, cooldown=100.0, clock=clock),
        )

        async def scenario():
            first = await service.submit_request(dict(REQUEST))
            second = await service.submit_request(dict(REQUEST))
            return first, second

        first, second = run(scenario())
        assert first["degraded"] and second["degraded"]
        assert service.stats.failed == 1        # only the first executed
        assert service.stats.shed_breaker == 1  # the second was refused
        assert len(store) == 0

    def test_saturated_queue_sheds_to_degraded(self, tmp_path):
        def runner(request, identity):
            return exact_result()

        def analytic(request, identity):
            return exact_result(cycles=90)

        admission = AdmissionController(max_depth=1)
        admission.admit("swift-basic", 1)  # pre-fill the only slot
        service, __, journal = make_service(
            tmp_path, runner=runner, degraded_runner=analytic,
            admission=admission,
        )
        response = run(service.submit_request(dict(REQUEST)))
        assert response["degraded"] is True
        assert service.stats.shed_queue == 1
        # shed before admission: nothing journaled, nothing owed
        assert len(journal) == 0

    def test_bad_request_is_typed(self, tmp_path):
        service, __, __ = make_service(tmp_path)
        response = run(service.submit_request({"app": "gemm"}))
        assert response["status"] == "error"
        assert response["kind"] == "bad_request"
        response = run(service.submit_request(
            {"app": "gemm", "simulator": "warp-drive"}
        ))
        assert response["kind"] == "bad_request"
        assert "unknown simulator" in response["message"]

    def test_client_hash_pin_mismatch_refused(self, tmp_path):
        service, __, __ = make_service(
            tmp_path, runner=lambda r, i: exact_result()
        )
        request = dict(REQUEST)
        request["trace_hash"] = "f" * 64
        response = run(service.submit_request(request))
        assert response["status"] == "error"
        assert "trace_hash" in response["message"]

    def test_recovery_reexecutes_pending_jobs(self, tmp_path):
        calls = []

        def runner(request, identity):
            calls.append(request.app)
            return exact_result()

        # First service: journal a job, never settle it (simulated kill
        # between admission and execution).
        service, store, journal = make_service(tmp_path, runner=runner)
        identity = service.identify(JobRequest.from_dict(REQUEST))
        journal.record_job(identity["key"], dict(REQUEST))
        journal.close()

        # Restart on the same journal/store.
        reloaded = ServeJournal.load(str(tmp_path / "serve.journal"))
        revived = SweepService(store, reloaded, runner=runner)
        recovered = run(revived.recover())
        assert recovered == 1
        assert calls == ["gemm"]
        assert reloaded.settled()[identity["key"]] == "stored"
        assert len(store) == 1
        assert revived.stats.recovered == 1

    def test_cache_hit_settles_stale_journal_debt(self, tmp_path):
        service, store, journal = make_service(
            tmp_path, runner=lambda r, i: exact_result()
        )
        response = run(service.submit_request(dict(REQUEST)))
        key = response["key"]
        # Forge the crashed-after-put state: job admitted, never settled.
        journal._done.pop(key)
        assert journal.unsettled(key)
        cached = run(service.submit_request(dict(REQUEST)))
        assert cached["cached"]
        assert not journal.unsettled(key)


# ----------------------------------------------------------------------
# grid helpers


class TestGridHelpers:
    def test_parse_grid_spec(self):
        grid = parse_grid_spec("l1.size_bytes=16384,65536;num_sms=2")
        assert grid == {"l1.size_bytes": ["16384", "65536"],
                        "num_sms": ["2"]}

    def test_parse_grid_spec_rejects_malformed(self):
        with pytest.raises(ConfigError):
            parse_grid_spec("just-a-word")
        with pytest.raises(ConfigError):
            parse_grid_spec("num_sms=")
        with pytest.raises(ConfigError):
            parse_grid_spec(";;")

    def test_grid_points_cartesian(self):
        base = make_tiny_gpu()
        points = grid_points(base, {"num_sms": ["2", "4"],
                                    "l1.size_bytes": ["16384", "32768"]})
        assert len(points) == 4
        assert len({config_hash(p) for p in points}) == 4


# ----------------------------------------------------------------------
# end to end over a real unix socket (single lightweight round trip)


class TestSocketEndToEnd:
    def test_submit_ping_stats_drain(self, tmp_path):
        from repro.serve.client import SweepClient

        socket_path = str(tmp_path / "s.sock")
        store = ResultStore(str(tmp_path / "store"))
        journal = ServeJournal.create(str(tmp_path / "serve.journal"))
        service = SweepService(
            store, journal, runner=lambda r, i: exact_result()
        )

        async def scenario():
            server_task = asyncio.create_task(service.serve(socket_path))
            loop = asyncio.get_running_loop()

            def client_calls():
                with SweepClient(socket_path, timeout=30.0) as client:
                    assert client.ping()
                    first = client.submit(dict(REQUEST))
                    second = client.submit(dict(REQUEST))
                    stats = client.stats()
                    client.drain()
                    return first, second, stats

            first, second, stats = await loop.run_in_executor(
                None, client_calls
            )
            await asyncio.wait_for(server_task, timeout=30.0)
            return first, second, stats

        first, second, stats = run(scenario())
        assert first["status"] == "ok" and not first["cached"]
        assert second["cached"]
        assert stats["stats"]["submitted"] == 2
        assert stats["store_entries"] == 1
        assert not os.path.exists(socket_path)
