"""Hardware oracle: reference cycle counts standing in for Nsight Compute.

The paper validates every simulator against cycles measured on real
GPUs.  Without hardware, this module produces the reference: the most
detailed model available (the fully cycle-accurate simulator) executed
under a *perturbed, undisclosed* configuration, plus effects none of the
simulators model.  Concretely the "real GPU" differs from the simulators'
nominal configuration in:

* microarchitectural latencies (execution units, L1, L2, DRAM) scaled by
  deterministic per-GPU factors in [0.85, 1.20) — vendors do not disclose
  these, and every simulator guesses them;
* a fixed kernel-launch overhead per kernel (driver + dispatch time that
  trace-driven simulators omit);
* a per-(application, GPU) lognormal residual representing unmodeled
  app-specific hardware interactions (clock boosting, memory compression,
  TLBs, instruction-cache behaviour).

All perturbations are seeded from the GPU and application names, so the
oracle is reproducible and *identical for every simulator compared
against it* — relative accuracy between simulators therefore reflects
their genuine modeling differences.  See DESIGN.md (substitutions) and
EXPERIMENTS.md for the calibration discussion.
"""

from __future__ import annotations

import math
import random
from dataclasses import replace
from typing import Dict, Tuple

from repro.frontend.config import ExecUnitConfig, GPUConfig
from repro.frontend.trace import ApplicationTrace
from repro.simulators.accel_like import AccelSimLike
from repro.utils.rng import derive_seed

#: Cycles of launch/driver overhead charged per kernel.  Real launch
#: overhead is ~5 us (thousands of cycles), but the synthetic workloads
#: are far shorter than the originals, so the overhead is scaled down to
#: keep its share of total cycles realistic.
KERNEL_LAUNCH_OVERHEAD = 300

#: Spread (sigma of log) of the per-app residual factor.
APP_RESIDUAL_SIGMA = 0.16

#: Range of the per-GPU latency perturbations.
_PERTURB_LOW, _PERTURB_HIGH = 0.85, 1.20


def perturbed_config(config: GPUConfig) -> GPUConfig:
    """The 'real hardware' configuration derived from a nominal one."""
    rng = random.Random(derive_seed("hardware-oracle", config.name))

    def scale(value: int, lo: float = _PERTURB_LOW, hi: float = _PERTURB_HIGH) -> int:
        return max(1, round(value * rng.uniform(lo, hi)))

    exec_units = tuple(
        ExecUnitConfig(u.unit, u.lanes, scale(u.latency)) for u in config.sm.exec_units
    )
    sm = replace(
        config.sm,
        exec_units=exec_units,
        shared_mem_latency=scale(config.sm.shared_mem_latency),
        fetch_latency=scale(config.sm.fetch_latency),
    )
    l1 = replace(config.l1, latency=scale(config.l1.latency))
    l2 = replace(config.l2, latency=scale(config.l2.latency))
    row_miss = scale(config.dram.latency)
    dram = replace(
        config.dram,
        latency=row_miss,
        row_hit_latency=min(row_miss, scale(config.dram.row_hit_latency)),
    )
    noc = replace(config.noc, latency=scale(config.noc.latency))
    return replace(config, sm=sm, l1=l1, l2=l2, dram=dram, noc=noc)


def app_residual_factor(app_name: str, gpu_name: str) -> float:
    """Deterministic lognormal residual for one (app, GPU) pair."""
    rng = random.Random(derive_seed("hardware-residual", gpu_name, app_name))
    return math.exp(rng.gauss(0.0, APP_RESIDUAL_SIGMA))


#: Process-wide measurement cache: (gpu name, app name, app size) -> cycles.
#: Hardware measurements never change, so figures sharing a GPU reuse them.
_MEASUREMENT_CACHE: Dict[Tuple[str, str, int], int] = {}


class HardwareOracle:
    """Produces reference "measured" cycles for applications on one GPU.

    Results are cached process-wide, so the expensive detailed run
    happens once per (app, GPU) no matter how many harnesses ask.
    """

    def __init__(self, config: GPUConfig) -> None:
        self.config = config
        self.hardware_config = perturbed_config(config)
        self._simulator = AccelSimLike(self.hardware_config)

    def measure(self, app: ApplicationTrace) -> int:
        """Reference cycle count for ``app`` on this GPU."""
        key = (self.config.name, app.name, app.num_instructions)
        cached = _MEASUREMENT_CACHE.get(key)
        if cached is not None:
            return cached
        result = self._simulator.simulate(app, gather_metrics=False)
        base = result.total_cycles + KERNEL_LAUNCH_OVERHEAD * len(app.kernels)
        cycles = max(1, round(base * app_residual_factor(app.name, self.config.name)))
        _MEASUREMENT_CACHE[key] = cycles
        return cycles
