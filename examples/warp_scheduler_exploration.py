#!/usr/bin/env python
"""Design-space exploration of warp scheduling policies — the paper's
motivating use case (§III-D: "assuming we need to explore a new warp
scheduling algorithm").

The Warp Scheduler & Dispatch stays cycle-accurate in every Swift-Sim
plan, so policies can be swapped and compared while the rest of the GPU
uses fast hybrid models.  This example compares GTO, loose round-robin,
and two-level scheduling — plus a custom policy defined right here —
across several applications.

Run:  python examples/warp_scheduler_exploration.py [scale]
"""

import sys

from repro import SwiftSimBasic, get_preset, make_app
from repro.core.warp_scheduler import WarpSchedulerPolicy, register_policy


@register_policy
class YoungestFirstScheduler(WarpSchedulerPolicy):
    """A deliberately bad policy: always prefer the youngest warp.

    Starves old warps behind long-latency work; a quick sanity check
    that the simulator actually responds to scheduling decisions.
    """

    policy_name = "YOUNGEST_FIRST"

    def order(self, candidates, cycle):
        return sorted(candidates, key=lambda warp: -warp.age)


POLICIES = ("GTO", "LRR", "TWO_LEVEL", "YOUNGEST_FIRST")
APPS = ("bfs", "gemm", "hotspot", "sssp")


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    base_gpu = get_preset("rtx2080ti")

    print(f"{'app':10s}" + "".join(f"{p:>16s}" for p in POLICIES))
    for app_name in APPS:
        app = make_app(app_name, scale=scale)
        cells = [f"{app_name:10s}"]
        baseline_cycles = None
        for policy in POLICIES:
            gpu = base_gpu.with_sm(scheduler_policy=policy)
            result = SwiftSimBasic(gpu).simulate(app, gather_metrics=False)
            if baseline_cycles is None:
                baseline_cycles = result.total_cycles
                cells.append(f"{result.total_cycles:15d} ")
            else:
                delta = 100.0 * (result.total_cycles - baseline_cycles) / baseline_cycles
                cells.append(f"{result.total_cycles:9d}({delta:+4.0f}%)")
        print("".join(cells))
    print("\nCycle counts per policy (delta vs GTO). Scheduling effects are")
    print("evaluated with the hybrid simulator at a fraction of the")
    print("cycle-accurate baseline's runtime.")


if __name__ == "__main__":
    main()
