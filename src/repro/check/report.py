"""Machine-readable verification reports.

Every pillar of :mod:`repro.check` reports its outcome as a list of
:class:`CheckFinding`\\ s: ``violation`` findings mean a correctness
contract was broken, ``info`` findings record context (what was checked,
observed divergences that stayed within tolerance).  A
:class:`CheckReport` aggregates findings across apps/simulators, renders
a terminal summary, and serializes to JSON so CI can archive and diff
verification runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

#: Finding severities, in increasing order of badness.
SEVERITIES = ("info", "violation")


@dataclass(frozen=True)
class CheckFinding:
    """One observation made by a verification check."""

    check: str     #: which pillar produced it (e.g. "shadow-jump")
    severity: str  #: "info" or "violation"
    subject: str   #: what was being checked (app, simulator, module, ...)
    message: str   #: human-readable detail

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    def as_dict(self) -> Dict[str, str]:
        return {
            "check": self.check,
            "severity": self.severity,
            "subject": self.subject,
            "message": self.message,
        }


def violation(check: str, subject: str, message: str) -> CheckFinding:
    """Shorthand for a violation-severity finding."""
    return CheckFinding(check=check, severity="violation", subject=subject,
                        message=message)


def info(check: str, subject: str, message: str) -> CheckFinding:
    """Shorthand for an info-severity finding."""
    return CheckFinding(check=check, severity="info", subject=subject,
                        message=message)


@dataclass
class CheckReport:
    """Aggregated outcome of one ``repro check`` invocation."""

    mode: str
    gpu_name: str
    scale: str
    apps: List[str] = field(default_factory=list)
    simulators: List[str] = field(default_factory=list)
    checks_run: int = 0
    findings: List[CheckFinding] = field(default_factory=list)

    @property
    def violations(self) -> List[CheckFinding]:
        return [f for f in self.findings if f.severity == "violation"]

    @property
    def ok(self) -> bool:
        """True when no check reported a violation."""
        return not self.violations

    def extend(self, findings: List[CheckFinding]) -> None:
        self.findings.extend(findings)

    def as_dict(self) -> Dict:
        return {
            "mode": self.mode,
            "gpu": self.gpu_name,
            "scale": self.scale,
            "apps": list(self.apps),
            "simulators": list(self.simulators),
            "checks_run": self.checks_run,
            "violations": len(self.violations),
            "ok": self.ok,
            "findings": [f.as_dict() for f in self.findings],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def render(self, verbose: bool = False) -> str:
        """Terminal summary: violations always, info findings on demand."""
        lines = [
            f"repro check --mode {self.mode}: {self.gpu_name}, "
            f"scale {self.scale}, {len(self.apps)} app(s), "
            f"{self.checks_run} check(s) run"
        ]
        shown = self.findings if verbose else self.violations
        for finding in shown:
            lines.append(
                f"  [{finding.severity}] {finding.check} :: "
                f"{finding.subject}: {finding.message}"
            )
        if self.ok:
            lines.append("PASS: no invariant violations")
        else:
            lines.append(f"FAIL: {len(self.violations)} violation(s)")
        return "\n".join(lines)
