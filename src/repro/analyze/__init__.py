"""``repro.analyze`` — framework-contract linter and static analysis.

The runtime verification stack (:mod:`repro.check`, PR 1) and the
fault-tolerant sweep machinery (:mod:`repro.resilience`, PR 2) enforce
Swift-Sim's contracts *after* a simulation runs.  This package enforces
them at commit time, with an AST-based whole-program analysis (stdlib
:mod:`ast`, no dependencies) organized as four rule families:

* **IF — interface conformance**: every ``Module`` subclass declares its
  component slot and :class:`~repro.sim.module.ModelLevel`, every
  ``ClockedModule`` implements ``tick``, and nothing reaches into
  another module's private state around the :mod:`repro.sim.ports`
  contracts;
* **DT — determinism**: no wall-clock reads, unseeded randomness, bare
  set iteration, or ``id()``-derived ordering in clocked code paths —
  the hazards that silently break shadow-clocking bit-equivalence and
  journal-resume convergence;
* **WR — wiring & race surface**: dangling and double-driven sinks,
  statically detectable duplicate module names (the compile-time twin of
  ``MetricsGatherer``'s runtime warning), module-global state written
  from the clocked phase, mutable class attributes on modules;
* **SW — sweep safety**: unpicklable fields on objects shipped to
  :mod:`repro.resilience` workers, complementing the runtime
  ``validate_picklable`` pre-flight;
* **SH — shard safety**: whole-program dataflow over every module's
  clocked surface (:mod:`~repro.analyze.callgraph`,
  :mod:`~repro.analyze.stateflow`) catching cross-module races before a
  PDES decomposition exists to hit them — unsynchronized cross-shard
  writes (SH501), mutable objects retained across ports (SH502), and
  tick-order-dependent cross-module reads (SH503).  The same analysis
  emits a partition manifest (:mod:`~repro.analyze.partition`,
  ``repro lint --partition-report``) proposing SM-side/memory-side
  shards with every cross-shard edge enumerated.

Mechanics shared by all rules: a pluggable registry
(:mod:`~repro.analyze.registry`), per-rule severity with a
``--fail-on`` gate, inline ``# repro: noqa[RULE]`` suppressions
(unknown rule names are rejected with
:class:`~repro.errors.UnknownRuleError`), a committed baseline for
grandfathered findings (:mod:`~repro.analyze.baseline`, prunable via
``--prune-baseline``), SARIF 2.1.0 output
(:mod:`~repro.analyze.sarif`), and a persistent cache
(:class:`~repro.analyze.index.AstCache`) holding both parsed ASTs and
rule results, keyed on a digest of the rule catalog so editing any
rule invalidates cached findings but not the parse.

Drive it with ``repro lint`` (text/JSON/SARIF output) or as the sixth
``repro check`` pillar (``--mode static``); the rule catalog lives in
``docs/static-analysis.md``.
"""

from repro.analyze.baseline import (
    apply_baseline,
    load_baseline,
    prune_baseline,
    write_baseline,
)
from repro.analyze.callgraph import CallGraph, build_callgraph
from repro.analyze.findings import SEVERITIES, LintFinding
from repro.analyze.index import AstCache, ProgramIndex, SourceFile, load_index
from repro.analyze.partition import Partition, build_partition, write_manifest
from repro.analyze.registry import (
    FAMILIES,
    RULES,
    Rule,
    all_rules,
    catalog_hash,
    resolve_rules,
)
from repro.analyze.runner import FAIL_ON, LintReport, lint_paths
from repro.analyze.sarif import to_sarif, to_sarif_json
from repro.analyze.stateflow import StateFlow, build_stateflow

__all__ = [
    "FAIL_ON",
    "FAMILIES",
    "AstCache",
    "CallGraph",
    "LintFinding",
    "LintReport",
    "Partition",
    "ProgramIndex",
    "RULES",
    "Rule",
    "SEVERITIES",
    "SourceFile",
    "StateFlow",
    "all_rules",
    "apply_baseline",
    "build_callgraph",
    "build_partition",
    "build_stateflow",
    "catalog_hash",
    "lint_paths",
    "load_baseline",
    "load_index",
    "prune_baseline",
    "resolve_rules",
    "to_sarif",
    "to_sarif_json",
    "write_baseline",
    "write_manifest",
]
