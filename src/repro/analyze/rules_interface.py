"""Interface-conformance rules (IF1xx).

Swift-Sim's modularity claim (paper §III-B2) holds only while modules
interact through the fixed contracts in :mod:`repro.sim.ports` and
declare what they are: which component slot they fill and at which
:class:`~repro.sim.module.ModelLevel`.  These rules make the contract
checkable at commit time.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.analyze.findings import LintFinding
from repro.analyze.index import ClassInfo, ProgramIndex, SourceFile
from repro.analyze.registry import rule


def _finding(rule_id: str, severity: str, source: SourceFile, node: ast.AST,
             scope: str, message: str) -> LintFinding:
    return LintFinding(
        rule=rule_id, severity=severity, path=source.path,
        line=getattr(node, "lineno", 1), scope=scope, message=message,
    )


def _concrete_modules(index: ProgramIndex) -> List[ClassInfo]:
    """Module subclasses that are actually usable components (not
    abstract intermediates or private helpers)."""
    return [
        info for info in index.module_classes()
        if not info.is_abstract and not info.name.startswith("_")
    ]


@rule(
    "IF101",
    "module declares component slot and modeling level",
    "error",
    "Undeclared slots break plan introspection and the Metrics Gatherer's "
    "component-collision detection: the module silently inherits the "
    "'module' placeholder slot.",
)
def check_slot_declarations(index: ProgramIndex) -> Iterator[LintFinding]:
    for info in _concrete_modules(index):
        for attr in ("component", "level"):
            if not index.declares(info, attr):
                yield _finding(
                    "IF101", "error", info.source, info.node, info.name,
                    f"Module subclass {info.name!r} never declares {attr!r} "
                    f"(class attribute or self.{attr} in __init__); every "
                    f"component must state its slot and ModelLevel",
                )


@rule(
    "IF102",
    "clocked module implements the clocking hook",
    "error",
    "A ClockedModule without a concrete tick() dies at first schedule; "
    "catching it statically beats catching it mid-sweep.",
)
def check_clocking_hook(index: ProgramIndex) -> Iterator[LintFinding]:
    for info in index.clocked_classes():
        if info.is_abstract or info.name.startswith("_"):
            continue
        if not index.defines_method(info, "tick"):
            yield _finding(
                "IF102", "error", info.source, info.node, info.name,
                f"ClockedModule subclass {info.name!r} does not implement "
                f"tick(cycle); the engine has nothing to drive",
            )


#: Method names on sinks/sources that constitute the public contract —
#: listed here so the IF103 message can point offenders at them.
PORT_CONTRACT = ("try_issue", "on_complete", "next_block", "block_done")


class _PrivateReachVisitor(ast.NodeVisitor):
    """Finds cross-object private-state access within one file."""

    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.findings: List[LintFinding] = []
        self._class_stack: List[ClassInfo] = []
        self._scope_stack: List[str] = []
        self._index: Optional[ProgramIndex] = None

    def run(self, index: ProgramIndex) -> List[LintFinding]:
        self._index = index
        self._by_node = {
            info.node: info
            for infos in index.classes.values()
            for info in infos
            if info.source is self.source
        }
        self.visit(self.source.tree)
        return self.findings

    # -- scope tracking

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        info = self._by_node.get(node)
        self._class_stack.append(info)
        self._scope_stack.append(node.name)
        self.generic_visit(node)
        self._scope_stack.pop()
        self._class_stack.pop()

    def _visit_function(self, node) -> None:
        self._scope_stack.append(node.name)
        self.generic_visit(node)
        self._scope_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    @property
    def _scope(self) -> str:
        return ".".join(self._scope_stack) or "<module>"

    # -- the checks

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            name = alias.name
            if name.startswith("_") and not name.startswith("__"):
                self.findings.append(_finding(
                    "IF103", "error", self.source, node, self._scope,
                    f"imports private name {name!r} from "
                    f"{node.module or '.'}; cross-module access must go "
                    f"through public APIs",
                ))
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = node.attr
        if attr.startswith("_") and not attr.startswith("__"):
            receiver = node.value
            if not self._allowed(receiver, attr):
                self._report(node, receiver, attr)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        # getattr/setattr/hasattr/delattr with a private string literal is
        # the same reach-in with the attribute name spelled out.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("getattr", "setattr", "hasattr", "delattr")
            and len(node.args) >= 2
            and isinstance(node.args[1], ast.Constant)
            and isinstance(node.args[1].value, str)
        ):
            attr = node.args[1].value
            receiver = node.args[0]
            if (
                attr.startswith("_")
                and not attr.startswith("__")
                and not self._allowed(receiver, attr)
            ):
                self._report(node, receiver, attr)
        self.generic_visit(node)

    def _report(self, node: ast.AST, receiver: ast.expr, attr: str) -> None:
        self.findings.append(_finding(
            "IF103", "error", self.source, node, self._scope,
            f"reaches into another object's private state "
            f"({self._receiver_repr(receiver)}.{attr}); modules "
            f"interact only through the ports contracts "
            f"({', '.join(PORT_CONTRACT)}) and public attributes",
        ))

    def _allowed(self, receiver: ast.expr, attr: str) -> bool:
        # Own state is fine.
        if isinstance(receiver, ast.Name) and receiver.id in ("self", "cls"):
            return True
        # Stdlib/module internals (os._exit) are out of scope for the
        # ports contract: the receiver is an imported module.
        if (
            isinstance(receiver, ast.Name)
            and receiver.id in self.source.imported_modules
        ):
            return True
        # Friend access inside the declaring class: methods like
        # ``load(cls)`` or ``__eq__(self, other)`` touching a peer
        # instance's private fields of the *same* class.
        for info in self._class_stack:
            if info is not None and (
                attr in info.self_attrs or attr in info.class_attrs
                or attr in info.methods
            ):
                return True
        return False

    @staticmethod
    def _receiver_repr(receiver: ast.expr) -> str:
        try:
            return ast.unparse(receiver)
        except Exception:  # pragma: no cover - unparse is best-effort
            return "<expr>"


@rule(
    "IF103",
    "no private-state reach-in across module boundaries",
    "error",
    "Touching another object's underscore state bypasses the abstracted "
    "interfaces that make cycle-accurate and analytical implementations "
    "interchangeable; it also invalidates jump-exactness reasoning, which "
    "is local to each module's declared contract.",
)
def check_private_reach(index: ProgramIndex) -> Iterator[LintFinding]:
    for source in index.files:
        yield from _PrivateReachVisitor(source).run(index)
