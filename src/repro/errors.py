"""Exception hierarchy for the Swift-Sim reproduction.

Every error raised deliberately by this package derives from
:class:`SwiftSimError`, so callers can catch one type at the API boundary.
"""

from __future__ import annotations


class SwiftSimError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(SwiftSimError):
    """A hardware configuration is inconsistent or cannot be parsed."""


class TraceError(SwiftSimError):
    """An application trace is malformed or violates trace invariants."""


class TraceCorruption(TraceError):
    """A trace file contains a malformed or truncated line.

    Always carries ``source`` (file path or ``<string>``) and the 1-based
    ``line`` number, so ingest failures point at the byte range to
    inspect instead of surfacing as a bare ``ValueError`` deep in the
    parser.
    """

    def __init__(self, message: str, *, source: str = "<string>",
                 line: int = 0) -> None:
        super().__init__(f"{source}:{line}: {message}")
        self.source = source
        self.line = line


class PlanError(SwiftSimError):
    """A :class:`repro.sim.plan.ModelingPlan` cannot be assembled."""


class SimulationError(SwiftSimError):
    """The simulation engine reached an inconsistent state."""


class CycleBudgetExceeded(SimulationError):
    """:meth:`repro.sim.engine.Engine.run` hit its ``max_cycles`` backstop
    with a module still active.

    Distinct from a generic :class:`SimulationError` so sweep drivers and
    the evaluation harness can tell "the model wedged or ran past its
    budget" apart from "the model is inconsistent" — the former is a
    per-workload failure record, not necessarily a framework bug.
    """

    def __init__(self, budget: int, cycle: int, module_name: str) -> None:
        super().__init__(
            f"simulation exceeded its {budget}-cycle budget at cycle {cycle} "
            f"(module {module_name!r} still active; wedged model or "
            f"undersized budget)"
        )
        self.budget = budget
        self.cycle = cycle
        self.module_name = module_name


class SimulationStall(SimulationError):
    """The progress watchdog declared the simulation dead- or live-locked.

    Raised by :class:`repro.guard.ProgressWatchdog` when no module
    advances architectural state for a full stall window, long before the
    ``max_cycles`` backstop would fire.  Carries a per-module diagnosis
    and, when forensics are enabled, the path of the bundle written.
    """

    def __init__(self, message: str, *, cycle: int = 0,
                 diagnosis: dict = None, bundle_path: str = "") -> None:
        if bundle_path:
            message = f"{message} [forensic bundle: {bundle_path}]"
        super().__init__(message)
        self.cycle = cycle
        self.diagnosis = diagnosis or {}
        self.bundle_path = bundle_path


class InvariantViolation(SimulationError):
    """A runtime invariant guard caught a conservation property broken
    mid-run (MSHR leak, queue overflow, credit imbalance, ...)."""

    def __init__(self, message: str, *, cycle: int = 0,
                 module_name: str = "", bundle_path: str = "") -> None:
        if bundle_path:
            message = f"{message} [forensic bundle: {bundle_path}]"
        super().__init__(message)
        self.cycle = cycle
        self.module_name = module_name
        self.bundle_path = bundle_path


class SimulationInterrupted(SwiftSimError):
    """A guarded run stopped deliberately after writing its checkpoint
    quota (``stop_after_checkpoints``) — the deterministic stand-in for a
    kill/timeout mid-run.  Carries the checkpoint to resume from."""

    def __init__(self, message: str, *, checkpoint_path: str = "",
                 cycle: int = 0) -> None:
        super().__init__(message)
        self.checkpoint_path = checkpoint_path
        self.cycle = cycle


class CheckpointError(SwiftSimError):
    """A mid-run checkpoint could not be written or used."""


class CheckpointCorruption(CheckpointError):
    """A checkpoint file is torn, truncated, or fails its integrity
    check.  Loaders fall back to the previous checkpoint when one
    exists."""


class MetricsError(SwiftSimError):
    """Metrics gathering detected a corrupting condition (e.g. two
    distinct modules sharing one name inside a single module tree)."""


class CheckError(SwiftSimError):
    """A :mod:`repro.check` verification check found a violation while
    running in strict mode."""


class AnalysisError(SwiftSimError):
    """The :mod:`repro.analyze` static analyzer was misused (unknown
    rule, unparsable source, corrupt baseline) — distinct from findings,
    which are reported, not raised."""


class UnknownRuleError(AnalysisError):
    """A ``# repro: noqa[RULE]`` comment names a rule the catalog does
    not know.  A typo'd suppression silently suppresses nothing, so it
    is rejected loudly instead of ignored."""


class PartitionStale(AnalysisError):
    """A partition manifest was generated from a different source tree
    than the one now running.

    The sharded engine trusts the manifest's cross-shard edge list
    completely — running on top of a stale one could silently violate
    the zero-unsynchronized-writes guarantee — so the loader fails
    closed instead of proceeding.  Regenerate with
    ``repro lint src --partition-report <path>``.
    """

    def __init__(self, message: str, *, manifest_path: str = "",
                 expected_fingerprint: str = "",
                 actual_fingerprint: str = "") -> None:
        super().__init__(message)
        self.manifest_path = manifest_path
        self.expected_fingerprint = expected_fingerprint
        self.actual_fingerprint = actual_fingerprint


class ShardSyncError(SimulationError):
    """A sharded run attempted unsynchronized cross-shard communication.

    The runtime counterpart of static rule SH501: in windowed mode every
    cross-shard interaction must go through a latency channel, so a
    direct cross-shard :meth:`Engine.wake` (or a channel whose latency
    is below the lookahead window) would let one shard observe another
    mid-window and break bit-equivalence.  Fails closed."""


class ShardFault(SimulationError):
    """Base class for per-shard worker failures in a supervised sharded
    run (:mod:`repro.sim.shardfault`).

    Carries the shard name, the window boundary that was the last
    globally consistent cut before the failure, and the recovery attempt
    number — everything the supervisor needs to respawn the worker and
    replay it to the boundary from its inbound channel transcript.
    """

    #: Short machine-readable failure kind, mirrored in fault records.
    kind = "shard-fault"
    #: Whether the shard supervisor may attempt replay recovery.
    retryable = True

    def __init__(self, message: str, *, shard: str = "?",
                 boundary: int = 0, attempt: int = 0) -> None:
        super().__init__(message)
        self.shard = shard
        self.boundary = boundary
        self.attempt = attempt

    def __str__(self) -> str:
        return (
            f"shard {self.shard!r} at boundary {self.boundary} "
            f"(attempt {self.attempt}): {super().__str__()}"
        )


class ShardCrash(ShardFault):
    """A shard worker process died (non-zero exit, killed, or lost its
    pipe) before reaching the window barrier."""

    kind = "shard-crash"


class ShardHang(ShardFault):
    """A shard worker missed its per-window heartbeat deadline; the
    supervisor reaped it rather than block the barrier forever."""

    kind = "shard-hang"


class ShardProtocolError(ShardFault):
    """A shard worker spoke the windowed protocol incorrectly (unknown
    reply tag, malformed tuple).  Indicates a bug, not an environmental
    fault, so it is not retryable — the supervisor degrades or raises."""

    kind = "shard-protocol"
    retryable = False


class CounterKindError(MetricsError):
    """A counter name was used with both sum semantics (``add``) and
    max semantics (``peak``); the mixed value would be meaningless."""


class WorkloadError(SwiftSimError):
    """A synthetic workload specification is invalid."""


class ServeError(SwiftSimError):
    """The sweep service (:mod:`repro.serve`) was misused or reached an
    inconsistent state (malformed request, unusable store entry, ...)."""


class LoadShedError(ServeError):
    """Base class for typed load-shed responses: the service *chose* not
    to execute a job to protect itself.  Every subclass corresponds to a
    rung of the degradation ladder documented in ``docs/serving.md`` —
    callers that allow degraded answers get the analytic tier instead of
    this error."""

    #: Short machine-readable shed kind, stable across releases (it is
    #: part of the wire protocol).
    kind = "shed"


class QueueSaturated(LoadShedError):
    """Admission control rejected a job: the bounded queue is full, by
    depth or by the cost model's estimated pending seconds."""

    kind = "queue_saturated"

    def __init__(self, message: str, *, depth: int = 0,
                 pending_cost: float = 0.0) -> None:
        super().__init__(message)
        self.depth = depth
        self.pending_cost = pending_cost


class CircuitOpen(LoadShedError):
    """The per-(simulator, config-region) circuit breaker is open:
    recent executions failed repeatedly, so new exact runs are refused
    until a half-open probe succeeds."""

    kind = "circuit_open"

    def __init__(self, message: str, *, breaker_key: str = "") -> None:
        super().__init__(message)
        self.breaker_key = breaker_key


class DeadlineExceeded(LoadShedError):
    """A job missed its per-job deadline (queue wait plus execution,
    retries included)."""

    kind = "deadline_exceeded"


class DegradationUnavailable(ServeError):
    """The degradation ladder bottomed out: the exact tier was refused
    or failed AND the analytic fallback cannot answer (numpy missing, or
    the request opted out of degraded answers)."""


class TaskFailure(SwiftSimError):
    """A supervised task failed terminally (all retries exhausted).

    Carries the context the supervisor knew at failure time so sweep
    reports can say *which* app died, on *which* attempt, and why.
    """

    #: Short machine-readable failure kind ("crash", "timeout", ...).
    kind = "failure"
    #: Whether the supervisor may retry this failure class.
    retryable = False

    def __init__(
        self,
        message: str,
        *,
        task: str = "?",
        attempt: int = 0,
        context: str = "",
    ) -> None:
        super().__init__(message)
        self.task = task
        self.attempt = attempt
        self.context = context

    def __str__(self) -> str:
        detail = f" [{self.context}]" if self.context else ""
        return (
            f"task {self.task!r} attempt {self.attempt}: "
            f"{super().__str__()}{detail}"
        )


class WorkerCrash(TaskFailure):
    """A worker process died (non-zero exit, killed, or lost its pipe)
    before delivering a result."""

    kind = "crash"
    retryable = True


class TaskTimeout(TaskFailure):
    """A task exceeded its wall-clock budget and its worker was reaped."""

    kind = "timeout"
    retryable = True


class ResourceExhausted(TaskFailure):
    """A worker ran out of a resource (memory, file descriptors) while
    executing a task."""

    kind = "exhausted"
    retryable = True


class CorruptResult(TaskFailure):
    """A worker delivered a result that failed validation (e.g. injected
    corruption, truncated payload)."""

    kind = "corrupt"
    retryable = True
