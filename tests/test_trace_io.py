"""Unit tests for the textual trace format (save/parse round trips)."""

import pytest

from repro.errors import TraceError
from repro.frontend.trace_io import load_trace, parse_trace, save_trace
from repro.tracegen.suites import make_app

from conftest import alu, load, make_single_warp_app


class TestRoundTrip:
    def test_simple_round_trip(self, tmp_path):
        app = make_single_warp_app([
            alu(0, 4, (1, 2)),
            load(16, 5, [0x10000 + 4 * i for i in range(32)]),
        ])
        path = tmp_path / "t.trace"
        save_trace(app, path)
        reloaded = load_trace(path)
        assert reloaded.name == app.name
        assert len(reloaded.kernels) == 1
        original = app.kernels[0].blocks[0].warps[0].instructions
        parsed = reloaded.kernels[0].blocks[0].warps[0].instructions
        assert parsed == original

    def test_generated_app_round_trip(self, tmp_path):
        app = make_app("pathfinder", scale="tiny")
        path = tmp_path / "pf.trace"
        save_trace(app, path)
        reloaded = load_trace(path)
        assert reloaded.suite == app.suite
        assert reloaded.num_instructions == app.num_instructions
        for k_orig, k_new in zip(app.kernels, reloaded.kernels):
            assert k_new.name == k_orig.name
            assert k_new.grid_dim == k_orig.grid_dim
            for b_orig, b_new in zip(k_orig.blocks, k_new.blocks):
                assert b_new.shared_mem_bytes == b_orig.shared_mem_bytes
                assert b_new.regs_per_thread == b_orig.regs_per_thread
                for w_orig, w_new in zip(b_orig.warps, b_new.warps):
                    assert w_new.instructions == w_orig.instructions

    def test_partial_mask_round_trip(self, tmp_path):
        app = make_single_warp_app([
            load(0, 3, [0x100, 0x200], mask=0b101),
        ])
        path = tmp_path / "m.trace"
        save_trace(app, path)
        inst = load_trace(path).kernels[0].blocks[0].warps[0].instructions[0]
        assert inst.active_mask == 0b101
        assert inst.addresses == (0x100, 0x200)


class TestGzip:
    def test_gz_round_trip(self, tmp_path):
        app = make_app("pathfinder", scale="tiny")
        path = tmp_path / "pf.trace.gz"
        save_trace(app, path)
        reloaded = load_trace(path)
        assert reloaded.num_instructions == app.num_instructions

    def test_gz_actually_compressed(self, tmp_path):
        app = make_app("gemm", scale="tiny")
        plain = tmp_path / "g.trace"
        compressed = tmp_path / "g.trace.gz"
        save_trace(app, plain)
        save_trace(app, compressed)
        assert compressed.stat().st_size < plain.stat().st_size
        # Magic bytes confirm it is a real gzip stream.
        assert plain.read_bytes()[:2] != b"\x1f\x8b"
        assert compressed.read_bytes()[:2] == b"\x1f\x8b"

    def test_corrupt_gz_raises_trace_error(self, tmp_path):
        path = tmp_path / "bad.trace.gz"
        path.write_bytes(b"\x1f\x8bnot really gzip")
        with pytest.raises(TraceError, match="cannot read"):
            load_trace(path)


class TestParserErrors:
    def test_missing_header(self):
        with pytest.raises(TraceError, match="header"):
            parse_trace("app x suite=\nkernel k grid=1,1,1\n")

    def test_missing_app_line(self):
        with pytest.raises(TraceError):
            parse_trace("#SWIFTSIM-TRACE v1\nkernel k grid=1,1,1\n")

    def test_kernel_without_blocks(self):
        text = "#SWIFTSIM-TRACE v1\napp a suite=s\nkernel k grid=1,1,1\n"
        with pytest.raises(TraceError, match="no blocks"):
            parse_trace(text)

    def test_unknown_field_rejected(self):
        text = (
            "#SWIFTSIM-TRACE v1\napp a suite=s\nkernel k grid=1,1,1\n"
            "block 0 smem=0 regs=32\nwarp 0\n0x0000 EXIT z=1\n"
        )
        with pytest.raises(TraceError, match="unknown instruction field"):
            parse_trace(text)

    def test_malformed_pc(self):
        text = (
            "#SWIFTSIM-TRACE v1\napp a suite=s\nkernel k grid=1,1,1\n"
            "block 0\nwarp 0\nzzzz EXIT\n"
        )
        with pytest.raises(TraceError, match="malformed PC"):
            parse_trace(text)

    def test_error_includes_line_number(self):
        text = (
            "#SWIFTSIM-TRACE v1\napp a suite=s\nkernel k grid=1,1,1\n"
            "block 0\nwarp 0\nzzzz EXIT\n"
        )
        with pytest.raises(TraceError, match=":6:"):
            parse_trace(text)

    def test_comments_and_blank_lines_ignored(self):
        text = (
            "#SWIFTSIM-TRACE v1\n\napp a suite=s\n# a comment\n"
            "kernel k grid=1,1,1\nblock 0\nwarp 0\n\n0x0000 EXIT\n"
        )
        app = parse_trace(text)
        assert app.kernels[0].blocks[0].warps[0].instructions[0].opcode == "EXIT"

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="not found"):
            load_trace(tmp_path / "nope.trace")

    def test_trace_invariants_enforced_by_parser(self):
        # warp without EXIT
        text = (
            "#SWIFTSIM-TRACE v1\napp a suite=s\nkernel k grid=1,1,1\n"
            "block 0\nwarp 0\n0x0000 IADD3 d=1\n"
        )
        with pytest.raises(TraceError):
            parse_trace(text)


GOOD_KERNEL = "kernel good grid=1,1,1\nblock 0 smem=0 regs=32\nwarp 0\n0x0000 EXIT\n"
BAD_KERNEL = "kernel bad grid=1,1,1\nblock 0 smem=zzz regs=32\nwarp 0\n0x0000 EXIT\n"
TRUNCATED_KERNEL = "kernel torn grid=1,1,1\nblock 1 smem=0 regs=32\nwarp 0\n"
HEADER = "#SWIFTSIM-TRACE v1\napp a suite=s\n"


class TestTraceCorruption:
    def test_typed_error_with_context(self):
        from repro.errors import TraceCorruption

        with pytest.raises(TraceCorruption) as exc_info:
            parse_trace(HEADER + BAD_KERNEL, source="bad.trace")
        exc = exc_info.value
        assert exc.source == "bad.trace"
        assert exc.line > 0
        assert str(exc).startswith(f"bad.trace:{exc.line}:")

    def test_corruption_is_a_trace_error(self):
        from repro.errors import TraceCorruption

        assert issubclass(TraceCorruption, TraceError)

    def test_malformed_block_field_rejected(self):
        with pytest.raises(TraceError, match="malformed block field"):
            parse_trace(HEADER + BAD_KERNEL)


class TestSkipCorruptKernels:
    def test_corrupt_kernel_dropped_good_ones_kept(self):
        text = HEADER + GOOD_KERNEL + BAD_KERNEL + GOOD_KERNEL
        app = parse_trace(text, skip_corrupt_kernels=True)
        assert [k.name for k in app.kernels] == ["good", "good"]

    def test_truncated_tail_kernel_dropped(self):
        text = HEADER + GOOD_KERNEL + TRUNCATED_KERNEL
        app = parse_trace(text, skip_corrupt_kernels=True)
        assert [k.name for k in app.kernels] == ["good"]

    def test_all_kernels_corrupt_still_raises(self):
        from repro.errors import TraceCorruption

        with pytest.raises(TraceCorruption, match="every kernel"):
            parse_trace(HEADER + BAD_KERNEL, skip_corrupt_kernels=True)

    def test_header_corruption_never_degrades(self):
        with pytest.raises(TraceError, match="header"):
            parse_trace("garbage\n" + GOOD_KERNEL,
                        skip_corrupt_kernels=True)

    def test_load_trace_forwards_flag(self, tmp_path):
        path = tmp_path / "mixed.trace"
        path.write_text(HEADER + BAD_KERNEL + GOOD_KERNEL)
        with pytest.raises(TraceError):
            load_trace(path)
        app = load_trace(path, skip_corrupt_kernels=True)
        assert [k.name for k in app.kernels] == ["good"]

    def test_default_remains_strict(self):
        with pytest.raises(TraceError):
            parse_trace(HEADER + GOOD_KERNEL + BAD_KERNEL)
