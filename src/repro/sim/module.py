"""Module base class and performance counters.

Every modeled GPU component — block scheduler, warp scheduler, execution
units, caches, NoC, DRAM — derives from :class:`Module`.  A module
declares which *component slot* it fills and at which
:class:`ModelLevel` it models that component, so an assembled simulator
can be introspected ("which parts of this GPU are analytical?") and the
Metrics Gatherer can walk the hierarchy generically.
"""

from __future__ import annotations

from enum import Enum, unique
from typing import Dict, Iterator, List, Optional

from repro.errors import CounterKindError


@unique
class ModelLevel(Enum):
    """How faithfully a module models its component."""

    CYCLE_ACCURATE = "cycle_accurate"
    HYBRID = "hybrid"          # fixed latencies + cycle-accurate contention
    ANALYTICAL = "analytical"  # closed-form latency/throughput equations


class Counters:
    """A bag of named integer counters.

    The Metrics Gatherer reads these; modules only ever add to them
    (paper §III-C: "architects only need to update the code of the
    counter within modules to collect the desired metrics").
    """

    __slots__ = ("_adds", "_peaks")

    # Counters sit on the hottest path in the whole simulator (every
    # issue, cache access, and queue push increments one), so add/peak
    # storage is split by kind: the steady-state case is a single dict
    # lookup plus an in-place update, and the add-vs-peak mixing check
    # only costs anything the first time a name appears.

    def __init__(self) -> None:
        self._adds: Dict[str, int] = {}
        self._peaks: Dict[str, int] = {}

    @staticmethod
    def _kind_error(name: str, prior: str, kind: str) -> CounterKindError:
        return CounterKindError(
            f"counter {name!r} already used with {prior}() semantics; "
            f"mixing {prior}() and {kind}() on one name would produce a "
            f"meaningless value — use two counter names"
        )

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount`` (created at zero)."""
        adds = self._adds
        if name in adds:
            adds[name] += amount
        elif name in self._peaks:
            raise self._kind_error(name, "peak", "add")
        else:
            adds[name] = amount

    def peak(self, name: str, value: int) -> None:
        """Track the maximum of ``value`` seen under ``name``."""
        peaks = self._peaks
        current = peaks.get(name)
        if current is not None:
            if value > current:
                peaks[name] = value
        elif name in self._adds:
            raise self._kind_error(name, "add", "peak")
        else:
            peaks[name] = value

    def get(self, name: str, default: int = 0) -> int:
        value = self._adds.get(name)
        if value is not None:
            return value
        return self._peaks.get(name, default)

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters."""
        snapshot = dict(self._adds)
        snapshot.update(self._peaks)
        return snapshot

    def reset(self) -> None:
        self._adds.clear()
        self._peaks.clear()

    def __contains__(self, name: str) -> bool:
        return name in self._adds or name in self._peaks

    def __iter__(self) -> Iterator[str]:
        yield from self._adds
        yield from self._peaks

    def __repr__(self) -> str:
        return f"Counters({self.as_dict()!r})"


class Module:
    """Base class for every modeled GPU component.

    Subclasses set ``component`` (the slot name, e.g. ``"warp_scheduler"``)
    and ``level``.  Modules form a tree via :meth:`add_child`; the
    Metrics Gatherer walks this tree.
    """

    #: Component slot this module fills (subclasses override).
    component: str = "module"
    #: Modeling fidelity (subclasses override).
    level: ModelLevel = ModelLevel.CYCLE_ACCURATE

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name if name is not None else type(self).__name__
        self.counters = Counters()
        self._children: List["Module"] = []
        self._claimed = False

    def add_child(self, child: "Module") -> "Module":
        """Attach a sub-module and return it (for chaining at build time)."""
        self._children.append(child)
        return child

    def claim(self) -> bool:
        """Claim this module for a single parent in the module tree.

        Modules shared between several owners (e.g. one shared-memory
        unit serving every sub-core of an SM) must appear in the metrics
        tree exactly once.  The first caller gets ``True`` and should
        :meth:`add_child` the module; later callers get ``False``.
        """
        if self._claimed:
            return False
        self._claimed = True
        return True

    @property
    def children(self) -> List["Module"]:
        return list(self._children)

    def walk(self) -> Iterator["Module"]:
        """Yield this module and all descendants, depth-first."""
        yield self
        for child in self._children:
            yield from child.walk()

    def reset(self) -> None:
        """Clear counters here and below (modules override to clear state too)."""
        self.counters.reset()
        for child in self._children:
            child.reset()

    # ------------------------------------------------------------------
    # state snapshot protocol (repro.guard: checkpointing + forensics)

    def snapshot_state(self) -> Dict[str, object]:
        """The module's own mutable state as a dict of live references.

        This is the pickling hook for mid-run checkpoints: pickle calls
        it via :meth:`__getstate__`, so the whole module graph — shared
        sub-modules, cross-references, warps resident in two owners — is
        captured in *one* pickling pass with object identity preserved.
        The default covers every attribute; subclasses override to drop
        transient or rebuildable state (and must then override
        :meth:`restore_state` to rebuild it).
        """
        return dict(self.__dict__)

    def restore_state(self, state: Dict[str, object]) -> None:
        """Inverse of :meth:`snapshot_state` (the unpickling hook)."""
        self.__dict__.update(state)

    def __getstate__(self) -> Dict[str, object]:
        return self.snapshot_state()

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.restore_state(state)

    def state_summary(self, max_repr: int = 120) -> Dict[str, str]:
        """JSON-safe rendering of :meth:`snapshot_state` for forensic
        bundles: attribute name -> truncated ``repr``."""
        summary: Dict[str, str] = {}
        for key, value in sorted(self.snapshot_state().items()):
            rendered = repr(value)
            if len(rendered) > max_repr:
                rendered = rendered[: max_repr - 3] + "..."
            summary[key] = rendered
        return summary

    def invariants(self, cycle: int) -> List[str]:
        """Violated conservation properties at ``cycle`` (empty = healthy).

        Stateful modules override this with cheap self-checks (MSHRs
        within bounds, queue occupancy under capacity, credits conserved);
        :class:`repro.guard.InvariantGuard` polls it every K cycles when
        runtime guards are enabled.  Checks must read only the module's
        own state and must not mutate anything.
        """
        return []

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} [{self.level.value}]>"
