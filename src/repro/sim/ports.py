"""Fixed inter-module interfaces (the paper's "abstracted interfaces").

The key enabler of hybrid modeling is that modules interact only through
these contracts, so a cycle-accurate implementation and an analytical one
are interchangeable (paper §III-B2).  The central contract is the one the
paper describes between Warp Scheduler & Dispatch and the execution /
LD-ST units:

* the scheduler offers an instruction with :meth:`InstructionSink.try_issue`;
* the sink either rejects it for this cycle (structural hazard — return
  ``None``), accepts it with a completion cycle known immediately
  (analytical / hybrid units — return an ``int``), or accepts it with the
  completion to be announced later through a
  :class:`CompletionListener` callback (fully cycle-accurate memory —
  return :data:`PENDING`).

Either way the scheduler's view is identical: issue, then wait for the
"instruction completion acknowledgment".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Union, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.warp import WarpState
    from repro.frontend.trace import TraceInstruction


class _Pending:
    """Sentinel: instruction accepted, completion signaled via callback."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "PENDING"


#: Singleton returned by sinks that will acknowledge completion later.
PENDING = _Pending()

#: What :meth:`InstructionSink.try_issue` returns.
IssueResult = Optional[Union[int, _Pending]]


class InstructionSink(ABC):
    """Anything the warp scheduler can issue an instruction to."""

    @abstractmethod
    def try_issue(
        self, warp: "WarpState", inst: "TraceInstruction", cycle: int
    ) -> IssueResult:
        """Offer ``inst`` from ``warp`` at ``cycle``.

        Returns ``None`` when the sink cannot accept this cycle, an
        ``int`` completion cycle when the latency is resolved at issue,
        or :data:`PENDING` when completion arrives via callback.
        """


class CompletionListener(ABC):
    """Receiver of deferred instruction-completion acknowledgments."""

    @abstractmethod
    def on_complete(
        self, warp: "WarpState", inst: "TraceInstruction", cycle: int
    ) -> None:
        """Called by a sink when a :data:`PENDING` instruction finishes."""


class ShardPortProxy:
    """Transparent wrapper for a port reference that crosses shards.

    In a sharded lockstep run the module graph is decomposed per the
    partition manifest, but port calls between shards remain direct
    Python calls (lockstep serializes ticks globally, so synchronous
    cross-shard calls are safe — the "synchronous-port conservative
    floor").  Wrapping the reference makes every cross-shard edge
    *observable*: calls to the declared port methods are tallied into a
    shared traffic dict keyed ``"<edge>.<method>"``, which the sharded
    check pillar and the speedup bench report.

    The proxy is deliberately NOT a :class:`~repro.sim.module.Module`:
    it must stay invisible to the metrics tree, ``engine.add``, and
    ``isinstance`` dispatch — callers keep the raw object for those and
    hand out the proxy only as a constructor argument.  Attribute reads
    (including mutation of the target's own state through returned
    objects) delegate untouched, so behaviour is bit-identical to the
    unwrapped reference.
    """

    #: The fixed inter-module interface surface (this module's
    #: contracts) plus the block-scheduler and memory entry points the
    #: assembled simulators call across the SM/memory boundary.
    PORT_METHODS = frozenset({
        "try_issue",
        "on_complete",
        "next_block",
        "block_done",
        "access_global",
        "issue_global",
        "access",
        "enqueue",
    })

    def __init__(self, target, edge: str, traffic: Optional[dict] = None):
        self._target = target
        self._edge = edge
        self._traffic = {} if traffic is None else traffic

    @property
    def raw(self):
        """The unwrapped reference (for identity checks and engine.add)."""
        return self._target

    def __getattr__(self, name: str):
        # Dunder lookups (pickle protocol probes, copy, repr fallbacks)
        # must never recurse into a half-built proxy.
        if name.startswith("__") and name.endswith("__"):
            raise AttributeError(name)
        target = self.__dict__.get("_target")
        if target is None:
            raise AttributeError(name)
        value = getattr(target, name)
        if name in self.PORT_METHODS and callable(value):
            traffic = self._traffic
            key = f"{self._edge}.{name}"

            def counted(*args, **kwargs):
                traffic[key] = traffic.get(key, 0) + 1
                return value(*args, **kwargs)

            return counted
        return value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShardPortProxy({self._edge}: {self._target!r})"


class BlockSource(ABC):
    """Interface the SMs use to pull thread blocks from the Block Scheduler."""

    @abstractmethod
    def next_block(self, sm_id: int):
        """Return the next :class:`~repro.frontend.trace.BlockTrace` for
        ``sm_id``, or ``None`` when no blocks remain."""

    @abstractmethod
    def block_done(self, sm_id: int, block, cycle: int) -> None:
        """Report that ``block`` finished on ``sm_id`` at ``cycle``."""
