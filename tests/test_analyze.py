"""Tests for :mod:`repro.analyze`, the framework-contract linter.

The seeded fixture files under ``tests/data/lint_fixtures/`` plant one
example of every rule violation; ``good_module.py`` exercises the same
constructs done right and must stay silent.  The self-lint test at the
bottom is the real deliverable: the package's own source passes every
rule with an empty baseline.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analyze import (
    FAIL_ON,
    FAMILIES,
    RULES,
    AstCache,
    LintFinding,
    all_rules,
    apply_baseline,
    lint_paths,
    load_baseline,
    resolve_rules,
    write_baseline,
)
from repro.check import MODES, static_check
from repro.cli import main
from repro.errors import AnalysisError, CounterKindError
from repro.sim.module import Counters

FIXTURES = Path(__file__).parent / "data" / "lint_fixtures"
REPO_SRC = Path(__file__).resolve().parents[1] / "src" / "repro"

#: rule -> expected hit count in the seeded fixtures.
EXPECTED = {
    "IF101": 2,  # HalfDeclared: neither component nor level
    "IF102": 1,  # Silent has no tick
    "IF103": 2,  # attribute reach-in + getattr string literal
    "DT201": 1,  # time.time() in tick
    "DT202": 1,  # random.random()
    "DT203": 1,  # set iteration in tick
    "DT204": 1,  # id() in tick
    "WR301": 1,  # dangling FixtureSink
    "WR302": 1,  # sink driven twice
    "WR303": 1,  # two modules literally named "dup"
    "WR304": 1,  # ISSUE_LOG mutated in Hub.record
    "WR305": 1,  # Hub.shared_scratch class dict
    "SW401": 2,  # class-level lambda + open() on self
    "SW402": 1,  # Task carrying a lambda
    "SH501": 1,  # RacyProducer writes RxQueue.drained directly
    "SH502": 1,  # scratch dict aliased across the enqueue port
    "SH503": 1,  # tick-order dependent read of peer.drained
}


@pytest.fixture(scope="module")
def fixture_report():
    return lint_paths([FIXTURES], fail_on="warning")


class TestRuleCatalog:
    def test_every_rule_registered_with_known_family(self):
        assert len(all_rules()) == len(EXPECTED)
        for rule in all_rules():
            assert rule.id[:2] in FAMILIES
            assert rule.severity in ("warning", "error")
            assert rule.rationale

    def test_resolve_by_family_prefix(self):
        determinism = resolve_rules(["DT"])
        assert sorted(r.id for r in determinism) == [
            "DT201", "DT202", "DT203", "DT204",
        ]

    def test_resolve_unknown_rule_raises(self):
        with pytest.raises(AnalysisError):
            resolve_rules(["XX999"])


class TestSeededFixtures:
    def test_every_rule_fires_exactly_as_planted(self, fixture_report):
        counts = {}
        for finding in fixture_report.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        assert counts == EXPECTED

    def test_severities_follow_the_registry(self, fixture_report):
        for finding in fixture_report.findings:
            assert finding.severity == RULES[finding.rule].severity

    def test_good_and_suppressed_files_stay_silent(self, fixture_report):
        flagged = {finding.path for finding in fixture_report.findings}
        assert not any("good_module" in path for path in flagged)
        assert not any("suppressed" in path for path in flagged)

    def test_noqa_suppression_is_counted_not_silent(self, fixture_report):
        assert fixture_report.suppressed == 1

    def test_gate_fails_on_fresh_errors(self, fixture_report):
        assert not fixture_report.ok
        assert len(fixture_report.errors) == 12
        assert len(fixture_report.warnings) == 8


class TestNoqa:
    def test_bare_noqa_suppresses_any_rule(self, tmp_path):
        bad = tmp_path / "wall.py"
        bad.write_text(
            "import random\n"
            "x = random.random()  # repro: noqa\n"
        )
        report = lint_paths([bad])
        assert report.findings == []
        assert report.suppressed == 1

    def test_scoped_noqa_only_covers_listed_rules(self, tmp_path):
        bad = tmp_path / "wall.py"
        bad.write_text(
            "import random\n"
            "x = random.random()  # repro: noqa[DT201]\n"
        )
        report = lint_paths([bad])
        assert [f.rule for f in report.findings] == ["DT202"]
        assert report.suppressed == 0


class TestBaseline:
    def test_round_trip_grandfathers_everything(self, tmp_path, fixture_report):
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, fixture_report.findings)
        rerun = lint_paths(
            [FIXTURES], baseline=baseline_path, fail_on="warning"
        )
        assert rerun.ok
        assert rerun.findings == []
        assert len(rerun.grandfathered) == sum(EXPECTED.values())
        assert rerun.stale_baseline == []

    def test_fingerprint_survives_line_shifts(self):
        first = LintFinding(
            rule="DT202", severity="error", path="a.py", line=10,
            scope="m", message="msg",
        )
        moved = LintFinding(
            rule="DT202", severity="error", path="a.py", line=99,
            scope="m", message="msg",
        )
        assert first.fingerprint == moved.fingerprint

    def test_stale_entries_are_reported(self, tmp_path):
        baseline_path = tmp_path / "baseline.json"
        ghost = LintFinding(
            rule="DT202", severity="error", path="gone.py", line=1,
            scope="gone", message="was fixed long ago",
        )
        write_baseline(baseline_path, [ghost])
        fresh, grandfathered, stale = apply_baseline(
            [], load_baseline(baseline_path)
        )
        assert fresh == [] and grandfathered == []
        assert [entry["path"] for entry in stale] == ["gone.py"]

    def test_corrupt_baseline_raises(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("{\"format\": \"something-else\"}")
        with pytest.raises(AnalysisError):
            load_baseline(bad)


class TestAstCache:
    def test_second_run_is_all_hits(self, tmp_path):
        cache_path = tmp_path / "ast.cache"
        cold = lint_paths([FIXTURES], cache=AstCache(cache_path))
        assert cold.cache_misses > 0 and cold.cache_hits == 0
        warm = lint_paths([FIXTURES], cache=AstCache(cache_path))
        assert warm.cache_misses == 0
        assert warm.cache_hits == cold.cache_misses
        assert [f.as_dict() for f in warm.findings] == [
            f.as_dict() for f in cold.findings
        ]


class TestCli:
    def test_lint_fixtures_exits_nonzero(self, capsys):
        assert main(["lint", str(FIXTURES), "--fail-on", "warning"]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out

    def test_rule_selection_by_family(self, capsys):
        assert main(["lint", str(FIXTURES), "--rules", "IF",
                     "--fail-on", "warning"]) == 1
        out = capsys.readouterr().out
        assert "IF10" in out
        assert "DT20" not in out and "WR30" not in out and "SW40" not in out

    def test_json_report(self, tmp_path, capsys):
        json_path = tmp_path / "lint.json"
        main(["lint", str(FIXTURES), "--json", str(json_path)])
        capsys.readouterr()
        payload = json.loads(json_path.read_text())
        assert payload["ok"] is False
        assert payload["errors"] == 12
        assert {f["rule"] for f in payload["findings"]} == set(EXPECTED)

    def test_write_then_apply_baseline(self, tmp_path, capsys):
        baseline_path = tmp_path / "baseline.json"
        assert main(["lint", str(FIXTURES), "--fail-on", "warning",
                     "--write-baseline", str(baseline_path)]) == 0
        assert main(["lint", str(FIXTURES), "--fail-on", "warning",
                     "--baseline", str(baseline_path)]) == 0
        out = capsys.readouterr().out
        assert "grandfathered" in out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in EXPECTED:
            assert rule_id in out

    def test_bad_fail_on_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["lint", str(FIXTURES), "--fail-on", "everything"])

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["lint", str(FIXTURES), "--rules", "XX999"]) == 2


class TestFailOnPolicy:
    def test_fail_on_error_ignores_warnings(self, tmp_path):
        bad = tmp_path / "warn_only.py"
        bad.write_text(
            "from repro.sim.module import Module\n"
            "class Chatty(Module):\n"
            "    component = 'chatty'\n"
            "    level = None\n"
            "    journal = []\n"
        )
        strict = lint_paths([bad], fail_on="warning")
        lax = lint_paths([bad], fail_on="error")
        assert [f.rule for f in strict.findings] == ["WR305"]
        assert not strict.ok
        assert lax.ok

    def test_fail_on_values_are_stable(self):
        assert FAIL_ON == ("error", "warning")


class TestStaticPillar:
    def test_mode_is_registered(self):
        assert "static" in MODES

    def test_violations_map_from_lint_errors(self):
        findings = static_check(paths=[FIXTURES])
        rules_seen = {f.message.split()[0] for f in findings
                      if f.severity == "violation"}
        assert rules_seen == {
            rule_id for rule_id, count in EXPECTED.items()
            if RULES[rule_id].severity == "error"
        }

    def test_package_source_is_a_clean_pillar(self):
        findings = static_check(paths=[REPO_SRC])
        assert [f for f in findings if f.severity == "violation"] == []
        assert any("clean" in f.message for f in findings)


class TestSelfLint:
    def test_repo_source_lints_clean_with_empty_baseline(self):
        report = lint_paths([REPO_SRC], fail_on="error")
        assert report.errors == [], "\n" + report.render()
        assert report.ok

    def test_cli_self_lint_exit_zero(self, capsys):
        assert main(["lint", str(REPO_SRC)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_committed_baseline_is_empty(self):
        baseline_path = REPO_SRC.parents[1] / "lint-baseline.json"
        assert load_baseline(baseline_path) == {}


class TestCounterKinds:
    def test_add_then_peak_on_one_name_raises(self):
        counters = Counters()
        counters.add("issued")
        with pytest.raises(CounterKindError):
            counters.peak("issued", 5)

    def test_peak_then_add_on_one_name_raises(self):
        counters = Counters()
        counters.peak("occupancy", 3)
        with pytest.raises(CounterKindError):
            counters.add("occupancy")

    def test_same_kind_reuse_is_fine(self):
        counters = Counters()
        counters.add("issued", 2)
        counters.add("issued", 3)
        counters.peak("occupancy", 1)
        counters.peak("occupancy", 4)
        assert counters.get("issued") == 5
        assert counters.get("occupancy") == 4

    def test_reset_forgets_kinds(self):
        counters = Counters()
        counters.add("issued")
        counters.reset()
        counters.peak("issued", 7)
        assert counters.get("issued") == 7
