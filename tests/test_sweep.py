"""Tests for the design-space sweep utility."""

import pytest

from repro.errors import ConfigError
from repro.eval.sweep import DesignSpaceSweep, apply_override
from repro.simulators.swift_memory import SwiftSimMemory
from repro.tracegen.suites import make_app

from conftest import make_tiny_gpu


class TestApplyOverride:
    def test_top_level_field(self, tiny_gpu):
        modified = apply_override(tiny_gpu, "memory_partitions", 2)
        assert modified.memory_partitions == 2
        assert tiny_gpu.memory_partitions == 4

    def test_nested_field(self, tiny_gpu):
        modified = apply_override(tiny_gpu, "l1.latency", 99)
        assert modified.l1.latency == 99

    def test_sm_field(self, tiny_gpu):
        modified = apply_override(tiny_gpu, "sm.scheduler_policy", "LRR")
        assert modified.sm.scheduler_policy == "LRR"

    def test_unknown_section(self, tiny_gpu):
        with pytest.raises(ConfigError):
            apply_override(tiny_gpu, "l9.latency", 1)

    def test_unknown_leaf(self, tiny_gpu):
        with pytest.raises(ConfigError):
            apply_override(tiny_gpu, "l1.warmth", 1)

    def test_too_deep(self, tiny_gpu):
        with pytest.raises(ConfigError):
            apply_override(tiny_gpu, "sm.exec_units.latency", 1)

    def test_invalid_value_fails_config_validation(self, tiny_gpu):
        with pytest.raises(ConfigError):
            apply_override(tiny_gpu, "l1.latency", 0)


class TestSweep:
    def test_cartesian_configurations(self, tiny_gpu):
        sweep = DesignSpaceSweep(
            tiny_gpu,
            {"l1.latency": [8, 16], "l2.latency": [40, 60, 80]},
        )
        combos = list(sweep.configurations())
        assert len(combos) == 6
        seen = {(o["l1.latency"], o["l2.latency"]) for o, __ in combos}
        assert len(seen) == 6

    def test_grid_validated_eagerly(self, tiny_gpu):
        with pytest.raises(ConfigError):
            DesignSpaceSweep(tiny_gpu, {"l1.nonsense": [1]})
        with pytest.raises(ConfigError):
            DesignSpaceSweep(tiny_gpu, {})
        with pytest.raises(ConfigError):
            DesignSpaceSweep(tiny_gpu, {"l1.latency": []})

    def test_run_produces_point_per_pair(self, tiny_gpu):
        sweep = DesignSpaceSweep(tiny_gpu, {"l1.latency": [8, 32]})
        apps = [make_app("sm", scale="tiny"), make_app("gemm", scale="tiny")]
        result = sweep.run(SwiftSimMemory, apps)
        assert len(result.points) == 4
        assert {p.app_name for p in result.points} == {"sm", "gemm"}

    def test_latency_override_changes_cycles(self, tiny_gpu):
        sweep = DesignSpaceSweep(tiny_gpu, {"l1.latency": [4, 64]})
        apps = [make_app("hotspot", scale="tiny")]
        result = sweep.run(SwiftSimMemory, apps)
        by_latency = {p.overrides["l1.latency"]: p.total_cycles for p in result.points}
        assert by_latency[64] > by_latency[4]

    def test_best_and_render(self, tiny_gpu):
        sweep = DesignSpaceSweep(tiny_gpu, {"l1.latency": [4, 64]})
        result = sweep.run(SwiftSimMemory, [make_app("hotspot", scale="tiny")])
        best = result.best("hotspot")
        assert best.overrides["l1.latency"] == 4
        text = result.render()
        assert "l1.latency" in text and "hotspot" in text

    def test_best_unknown_app(self, tiny_gpu):
        sweep = DesignSpaceSweep(tiny_gpu, {"l1.latency": [4]})
        result = sweep.run(SwiftSimMemory, [make_app("sm", scale="tiny")])
        with pytest.raises(ConfigError):
            result.best("doom")
