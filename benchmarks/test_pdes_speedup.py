"""Experiment PDES — sharded-engine cost/benefit measurement.

Two measurements, persisted as ``BENCH_pdes_speedup.json`` for the CI
artifact trail:

* **synthetic fan-out**: a multi-shard synthetic workload run serially
  and through the multiprocess windowed runner (one worker per shard).
  This is the configuration the conservative-lookahead design targets:
  independent shards, latency-separated channels, work that dwarfs the
  barrier cost.
* **real-sim lockstep overhead**: the production simulators under the
  partition-manifest decomposition.  Lockstep serializes ticks globally
  (that is *why* it is bit-exact), so it measures the bookkeeping
  overhead of the sharded dispatch path, not a speedup.

Correctness is gated hard (cycles and counters bit-identical — the
equivalence contract); wall-clock ratios are recorded, not gated: a
pure-Python coordinator with pickled message passing can sit on either
side of 1.0 depending on machine and scale, and the artifact is the
honest record of where it sits here.
"""

from __future__ import annotations

import time

import pytest

from repro.profile import machine_info, write_bench_artifact
from repro.sim.engine import Engine
from repro.sim.parallel import run_sharded_processes
from repro.sim.synthetic import (
    attach_serial,
    build_shard,
    build_system,
    collect_counters,
    demo_spec,
)


def _time(fn):
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started


@pytest.fixture(scope="module")
def pdes_record():
    return {"machine": machine_info(), "synthetic": {}, "realsim": {}}


def test_synthetic_process_fanout(pdes_record):
    spec = demo_spec(shards=4, nodes_per_shard=6, seed=41, latency=6)

    def serial():
        modules, channels = build_system(spec)
        engine = Engine()
        attach_serial(engine, modules, channels)
        final = engine.run()
        return final, collect_counters(modules)

    (serial_final, serial_counters), serial_wall = _time(serial)
    outcome, parallel_wall = _time(lambda: run_sharded_processes(
        build_shard, (spec,), spec.shards, spec.routes(),
        lookahead=spec.min_cross_latency(),
    ))
    assert outcome.final_cycle == serial_final
    assert outcome.counters == serial_counters
    pdes_record["synthetic"] = {
        "shards": len(spec.shards),
        "final_cycle": serial_final,
        "windows": outcome.windows,
        "messages": outcome.messages,
        "serial_wall_seconds": serial_wall,
        "parallel_wall_seconds": parallel_wall,
        "speedup": serial_wall / parallel_wall if parallel_wall else 0.0,
    }


def test_realsim_lockstep_overhead(pdes_record, gpu):
    from repro.check.sharded import default_shard_plans
    from repro.simulators.swift_memory import SwiftSimMemory
    from repro.tracegen.suites import make_app

    plan = default_shard_plans()[-1]  # the manifest decomposition
    per_app = {}
    for name in ("bfs", "gemm"):
        app = make_app(name, scale="tiny")
        simulator = SwiftSimMemory(gpu)
        serial, serial_wall = _time(
            lambda: simulator.simulate(app, gather_metrics=False)
        )
        sharded, sharded_wall = _time(
            lambda: simulator.simulate(
                app, gather_metrics=False, shard_plan=plan
            )
        )
        assert sharded.total_cycles == serial.total_cycles, name
        per_app[name] = {
            "cycles": serial.total_cycles,
            "serial_wall_seconds": serial_wall,
            "sharded_wall_seconds": sharded_wall,
            "overhead_ratio": (
                sharded_wall / serial_wall if serial_wall else 0.0
            ),
            "port_traffic": sharded.sharding["port_traffic"],
        }
    pdes_record["realsim"] = {
        "simulator": simulator.name,
        "plan": plan.describe(),
        "apps": per_app,
    }


def test_write_pdes_artifact(pdes_record):
    """Last in file order: persists what the measurements recorded."""
    assert pdes_record["synthetic"], "synthetic measurement did not run"
    path = write_bench_artifact("pdes_speedup", pdes_record)
    print(f"\nwrote {path}")
