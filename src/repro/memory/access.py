"""Memory-access coalescing.

The LD/ST unit merges the per-thread byte addresses of one warp memory
instruction into the minimal set of 32-byte *sector transactions*
(Turing/Ampere L1s are sectored; a fully coalesced warp load of 4-byte
words touches 4 sectors = 128 bytes).  Divergent access patterns expand
into up to 32 transactions — the primary source of memory-bound behaviour
the simulators must capture.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


class SectorTransaction:
    """One coalesced sector access: (line address, sector index within line).

    ``line_addr`` is the byte address divided by the line size (i.e. a line
    *number*), so caches at every level with the same line size can share
    transactions directly.
    """

    __slots__ = ("line_addr", "sector", "thread_count")

    def __init__(self, line_addr: int, sector: int, thread_count: int) -> None:
        self.line_addr = line_addr
        self.sector = sector
        self.thread_count = thread_count

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SectorTransaction):
            return NotImplemented
        return (
            self.line_addr == other.line_addr
            and self.sector == other.sector
            and self.thread_count == other.thread_count
        )

    def __hash__(self) -> int:
        return hash((self.line_addr, self.sector))

    def __repr__(self) -> str:
        return (
            f"SectorTransaction(line={self.line_addr:#x}, sector={self.sector}, "
            f"threads={self.thread_count})"
        )


def coalesce(
    addresses: Sequence[int], line_bytes: int = 128, sector_bytes: int = 32
) -> List[SectorTransaction]:
    """Coalesce per-thread byte addresses into sector transactions.

    Transactions are returned in first-touch order (the order the hardware
    generates them while walking lanes), each annotated with how many
    threads it serves.
    """
    sectors_per_line = line_bytes // sector_bytes
    touched: Dict[Tuple[int, int], int] = {}
    for addr in addresses:
        line_addr = addr // line_bytes
        sector = (addr // sector_bytes) % sectors_per_line
        key = (line_addr, sector)
        touched[key] = touched.get(key, 0) + 1
    return [
        SectorTransaction(line_addr, sector, count)
        for (line_addr, sector), count in touched.items()
    ]
