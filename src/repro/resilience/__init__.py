"""``repro.resilience`` — fault-tolerant sweep execution.

The paper's bulk-evaluation workflow (~20 apps x 3 GPUs x 3 simulators,
§IV-B2) runs long enough that worker crashes, hangs, and OOMs are
expected events, not exceptions.  This package makes the execution layer
survive them:

* :class:`~repro.resilience.supervisor.Supervisor` — supervised
  per-task workers with timeouts, reaping, and retry/backoff
  (:class:`~repro.resilience.policy.RetryPolicy`);
* :class:`~repro.resilience.journal.RunJournal` — durable JSON-lines
  checkpoint of completed (app, gpu, simulator) triples so interrupted
  sweeps resume bit-identically;
* :class:`~repro.resilience.chaos.ChaosPlan` — seeded, deterministic
  fault injection proving the above (``repro chaos``).

See ``docs/resilience.md`` for the methodology.
"""

from repro.resilience.chaos import (
    CRASH_EXIT_CODE,
    ChaosPlan,
    CorruptedResult,
    NO_CHAOS,
)
from repro.resilience.journal import (
    RunJournal,
    result_from_dict,
    result_to_dict,
)
from repro.resilience.policy import NO_RETRY, RetryPolicy
from repro.resilience.supervisor import (
    AttemptRecord,
    Supervisor,
    Task,
    TaskOutcome,
    classify_failure,
    raise_first_failure,
)

__all__ = [
    "AttemptRecord",
    "CRASH_EXIT_CODE",
    "ChaosPlan",
    "CorruptedResult",
    "NO_CHAOS",
    "NO_RETRY",
    "RetryPolicy",
    "RunJournal",
    "Supervisor",
    "Task",
    "TaskOutcome",
    "classify_failure",
    "raise_first_failure",
    "result_from_dict",
    "result_to_dict",
]
