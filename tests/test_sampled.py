"""Tests for the block-sampling extension."""

import pytest

from repro.errors import ConfigError
from repro.simulators.sampled import SampledSimulator, sample_kernel
from repro.simulators.swift_basic import SwiftSimBasic
from repro.tracegen.suites import make_app

from conftest import make_tiny_gpu


class TestSampleKernel:
    def test_rate_one_is_identity(self):
        kernel = make_app("gemm", scale="tiny").kernels[0]
        assert sample_kernel(kernel, 1) is kernel

    def test_small_kernels_untouched(self):
        kernel = make_app("gemm", scale="tiny").kernels[0]
        assert sample_kernel(kernel, len(kernel.blocks) + 1) is kernel

    def test_sampling_picks_every_kth(self):
        kernel = make_app("hotspot", scale="small").kernels[0]
        sampled = sample_kernel(kernel, 3)
        expected = (len(kernel.blocks) + 2) // 3
        assert len(sampled.blocks) == expected
        # First block kept, ids renumbered densely.
        assert sampled.blocks[0].warps[0].instructions == kernel.blocks[0].warps[0].instructions
        assert [b.block_id for b in sampled.blocks] == list(range(expected))

    def test_resources_preserved(self):
        kernel = make_app("gemm", scale="small").kernels[0]
        sampled = sample_kernel(kernel, 2)
        assert sampled.blocks[0].shared_mem_bytes == kernel.blocks[0].shared_mem_bytes


class TestSampledSimulator:
    def test_rate_one_matches_inner(self, tiny_gpu):
        app = make_app("sm", scale="tiny")
        inner = SwiftSimBasic(tiny_gpu)
        sampled = SampledSimulator(SwiftSimBasic(tiny_gpu), rate=1)
        assert sampled.simulate(app).total_cycles == inner.simulate(
            app, gather_metrics=False
        ).total_cycles

    def test_estimate_within_tolerance_on_homogeneous_app(self, tiny_gpu):
        # Every block of `sm` does identical work: sampling should land close.
        app = make_app("sm", scale="small")
        full = SwiftSimBasic(tiny_gpu).simulate(app, gather_metrics=False)
        estimate = SampledSimulator(
            SwiftSimBasic(tiny_gpu), rate=2, min_blocks=2
        ).simulate(app)
        error = abs(estimate.total_cycles - full.total_cycles) / full.total_cycles
        assert error < 0.6

    def test_sampling_is_faster(self, tiny_gpu):
        app = make_app("hotspot", scale="small")
        full = SwiftSimBasic(tiny_gpu).simulate(app, gather_metrics=False)
        estimate = SampledSimulator(
            SwiftSimBasic(tiny_gpu), rate=4, min_blocks=2
        ).simulate(app)
        assert estimate.wall_time_seconds < full.wall_time_seconds

    def test_name_and_kernel_accounting(self, tiny_gpu):
        app = make_app("atax", scale="tiny")
        sampled = SampledSimulator(SwiftSimBasic(tiny_gpu), rate=2, min_blocks=1)
        result = sampled.simulate(app)
        assert result.simulator_name == "swift-basic+sample2"
        assert len(result.kernels) == len(app.kernels)
        assert result.total_cycles == result.kernels[-1].end_cycle
        # Instructions report the *full* application, not the sample.
        assert result.instructions == app.num_instructions

    def test_invalid_parameters(self, tiny_gpu):
        with pytest.raises(ConfigError):
            SampledSimulator(SwiftSimBasic(tiny_gpu), rate=0)
        with pytest.raises(ConfigError):
            SampledSimulator(SwiftSimBasic(tiny_gpu), min_blocks=0)
