"""Deterministic seeding helpers.

Trace generation and the hardware oracle must be reproducible run-to-run
and independent of Python's per-process hash randomization, so seeds are
derived with a stable FNV-1a hash over string labels.
"""

from __future__ import annotations

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def stable_hash(text: str) -> int:
    """64-bit FNV-1a hash of ``text``, stable across processes and runs."""
    value = _FNV_OFFSET
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK64
    return value


def derive_seed(*labels: object) -> int:
    """Derive a reproducible 63-bit seed from any sequence of labels."""
    return stable_hash("\x1f".join(str(label) for label in labels)) >> 1
