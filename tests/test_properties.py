"""Property-based tests (hypothesis) for core data structures and the
framework's central invariants."""

import random as stdlib_random
from collections import OrderedDict

import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend.config import CacheConfig
from repro.frontend.trace import TraceInstruction
from repro.frontend.trace_io import parse_trace, save_trace
from repro.memory.access import coalesce
from repro.memory.cache import AccessStatus, SectoredCache
from repro.memory.reuse_distance import _LRUStack
from repro.core.scoreboard import Scoreboard
from repro.sim.plan import SWIFT_BASIC_PLAN, SWIFT_MEMORY_PLAN
from repro.simulators.base import PlanSimulator
from repro.tracegen.suites import make_app
from repro.utils.stats import geomean

from conftest import alu, make_tiny_gpu


# ----------------------------------------------------------------------
# Coalescer


addresses_strategy = st.lists(
    st.integers(min_value=0, max_value=1 << 24), min_size=1, max_size=32
)


class TestCoalescerProperties:
    @given(addresses_strategy)
    def test_every_address_covered_exactly_once(self, addresses):
        transactions = coalesce(addresses)
        covered = {(tx.line_addr, tx.sector) for tx in transactions}
        assert len(covered) == len(transactions)  # no duplicate sectors
        for addr in addresses:
            key = (addr // 128, (addr // 32) % 4)
            assert key in covered

    @given(addresses_strategy)
    def test_thread_counts_sum_to_addresses(self, addresses):
        transactions = coalesce(addresses)
        assert sum(tx.thread_count for tx in transactions) == len(addresses)

    @given(addresses_strategy)
    def test_transaction_count_bounded(self, addresses):
        transactions = coalesce(addresses)
        assert 1 <= len(transactions) <= len(addresses)

    @given(addresses_strategy, st.randoms(use_true_random=False))
    def test_permutation_invariant_as_set(self, addresses, rng):
        shuffled = list(addresses)
        rng.shuffle(shuffled)
        original = {(t.line_addr, t.sector, t.thread_count) for t in coalesce(addresses)}
        permuted = {(t.line_addr, t.sector, t.thread_count) for t in coalesce(shuffled)}
        assert original == permuted


# ----------------------------------------------------------------------
# Sectored cache vs an independent reference model


class _ReferenceCache:
    """Independent set-associative sectored LRU model (functional)."""

    def __init__(self, num_sets, assoc, sectors_per_line):
        self.num_sets = num_sets
        self.assoc = assoc
        self.sets = [OrderedDict() for __ in range(num_sets)]  # line -> set(sectors)

    def access(self, line, sector):
        """Returns True on hit; always installs (read, fills instant)."""
        index = line % self.num_sets
        cache_set = self.sets[index]
        if line in cache_set:
            sectors = cache_set.pop(line)
            cache_set[line] = sectors  # move to MRU
            if sector in sectors:
                return True
            sectors.add(sector)
            return False
        if len(cache_set) >= self.assoc:
            cache_set.popitem(last=False)  # evict LRU
        cache_set[line] = {sector}
        return False


cache_trace_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=63), st.integers(min_value=0, max_value=3)),
    min_size=1,
    max_size=300,
)


class TestCacheAgainstReference:
    @given(cache_trace_strategy)
    @settings(max_examples=60, deadline=None)
    def test_functional_lru_matches_reference(self, accesses):
        config = CacheConfig(
            size_bytes=16 * 128,  # 16 lines
            assoc=4,
            mshr_entries=64,
            replacement="LRU",
        )
        cache = SectoredCache(config, name="dut")
        reference = _ReferenceCache(config.num_sets, config.assoc, 4)
        for line, sector in accesses:
            result = cache.access_functional(line, sector, is_write=False)
            hit = result.status is AccessStatus.HIT
            assert hit == reference.access(line, sector), (line, sector)

    @given(cache_trace_strategy)
    @settings(max_examples=30, deadline=None)
    def test_counters_balance(self, accesses):
        config = CacheConfig(size_bytes=16 * 128, assoc=4, mshr_entries=64)
        cache = SectoredCache(config)
        for line, sector in accesses:
            cache.access_functional(line, sector, is_write=False)
        counted = (
            cache.counters.get("sector_hits")
            + cache.counters.get("sector_misses")
            + cache.counters.get("pending_hits")
        )
        assert counted == cache.counters.get("sector_accesses") == len(accesses)


# ----------------------------------------------------------------------
# Reuse-distance stack


class TestReuseDistanceProperties:
    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_stack_matches_naive_reference(self, blocks):
        stack = _LRUStack()
        history = []
        for block in blocks:
            measured = stack.access((block, 0))
            if block in history:
                expected = len(history) - history.index(block) - 1
                history.remove(block)
            else:
                expected = None
            history.append(block)
            assert measured == expected

    @given(st.lists(st.integers(min_value=0, max_value=10), min_size=2, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_distance_bounded_by_universe(self, blocks):
        stack = _LRUStack()
        for block in blocks:
            distance = stack.access((block, 0))
            if distance is not None:
                assert 0 <= distance <= 10


# ----------------------------------------------------------------------
# Scoreboard


class TestScoreboardProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 15), st.integers(1, 100)),
            min_size=1,
            max_size=40,
        ),
        st.integers(0, 200),
    )
    @settings(max_examples=60, deadline=None)
    def test_can_issue_consistent_with_ready_cycle(self, reservations, probe_cycle):
        scoreboard = Scoreboard()
        for reg, completion in reservations:
            scoreboard.reserve((reg,), completion)
        inst = alu(0, 1, tuple({reg for reg, __ in reservations[:3]}))
        ready = scoreboard.ready_cycle(inst)
        assert ready is not None
        assert scoreboard.can_issue(inst, probe_cycle) == (ready <= probe_cycle)


# ----------------------------------------------------------------------
# Trace round trip


instruction_strategy = st.builds(
    lambda pc, dest, src, mask_bits: TraceInstruction(
        pc * 16,
        "IADD3",
        dest_regs=tuple(dest),
        src_regs=tuple(src),
        active_mask=mask_bits | 1,
    ),
    st.integers(0, 1000),
    st.lists(st.integers(0, 255), max_size=2),
    st.lists(st.integers(0, 255), max_size=3),
    st.integers(0, 0xFFFFFFFF),
)


class TestTraceRoundTripProperties:
    @given(st.lists(instruction_strategy, min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_preserves_instructions(self, instructions):
        import tempfile
        from pathlib import Path
        from repro.frontend.trace import ApplicationTrace, BlockTrace, KernelTrace, WarpTrace
        instructions = list(instructions) + [
            TraceInstruction(len(instructions) * 16 + 16000, "EXIT")
        ]
        app = ApplicationTrace(
            "prop", [KernelTrace("k", [BlockTrace(0, [WarpTrace(0, instructions)])])]
        )
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "prop.trace"
            save_trace(app, path)
            reloaded = parse_trace(path.read_text(), source=str(path))
        assert reloaded.kernels[0].blocks[0].warps[0].instructions == instructions


# ----------------------------------------------------------------------
# Stats


class TestStatsProperties:
    @given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=50))
    def test_geomean_between_min_and_max(self, values):
        result = geomean(values)
        assert min(values) * 0.999 <= result <= max(values) * 1.001

    @given(
        st.lists(st.floats(min_value=0.01, max_value=1e4), min_size=1, max_size=20),
        st.floats(min_value=0.1, max_value=10),
    )
    def test_geomean_scales_linearly(self, values, factor):
        scaled = geomean([v * factor for v in values])
        assert scaled == pytest.approx(geomean(values) * factor, rel=1e-6)


# ----------------------------------------------------------------------
# Engine equivalence on arbitrary module populations


class _AlarmModule:
    """Performs 'work' at predetermined cycles; safe to tick early."""

    def __init__(self, name, alarms):
        from repro.sim.engine import ClockedModule

        alarms = sorted(set(alarms))

        class _Impl(ClockedModule):
            def __init__(inner):
                super().__init__(name)
                inner.alarms = list(alarms)
                inner.work_log = []

            def tick(inner, cycle):
                while inner.alarms and inner.alarms[0] <= cycle:
                    inner.work_log.append(inner.alarms.pop(0))
                if inner.alarms:
                    return inner.alarms[0]
                return None

            def is_done(inner):
                return not inner.alarms

        self.impl = _Impl()


class TestEngineEquivalence:
    @given(
        st.lists(
            st.lists(st.integers(0, 200), min_size=1, max_size=8),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_jump_and_crawl_do_identical_work(self, alarm_sets):
        from repro.sim.engine import Engine

        logs = {}
        finals = {}
        for allow_jump in (True, False):
            engine = Engine(allow_jump=allow_jump)
            modules = [
                _AlarmModule(f"m{i}", alarms).impl
                for i, alarms in enumerate(alarm_sets)
            ]
            for module in modules:
                engine.add(module)
            finals[allow_jump] = engine.run()
            logs[allow_jump] = [m.work_log for m in modules]
        assert logs[True] == logs[False]
        assert finals[True] == finals[False]


# ----------------------------------------------------------------------
# The framework's central invariant: clock jumping is exact


class TestJumpExactness:
    @pytest.mark.parametrize("app_name", ["gemm", "bfs", "sm"])
    @pytest.mark.parametrize("plan", [SWIFT_BASIC_PLAN, SWIFT_MEMORY_PLAN],
                             ids=["basic", "memory"])
    def test_event_jump_equals_per_cycle(self, app_name, plan):
        """Running a hybrid plan with per-cycle ticking must give exactly
        the same cycle count as with event jumping: skipping silent
        cycles is a pure speed optimization, never a timing change."""
        gpu = make_tiny_gpu()
        app = make_app(app_name, scale="tiny")
        jumped = PlanSimulator(gpu, plan=plan).simulate(app, gather_metrics=False)
        crawled = PlanSimulator(
            gpu, plan=plan.with_choice("clocking", "per_cycle", name="crawl")
        ).simulate(app, gather_metrics=False)
        assert jumped.total_cycles == crawled.total_cycles
