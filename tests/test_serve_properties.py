"""Property-based tests for the serve cache-key discipline.

The content-addressed cache is only safe if the key is a pure function
of *meaning*: two spellings of the same configuration must collide, and
two different configurations must never collide.  Hypothesis explores
the spelling space (dict ordering, float formatting, nesting) far
beyond what example-based tests cover.
"""

import json
import math

import pytest

from hypothesis import given, settings, strategies as st

from repro.errors import ServeError
from repro.serve.keys import canonical_json, config_hash, job_key

# Scalars whose canonical form must be spelling-independent.
scalars = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2 ** 53), max_value=2 ** 53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
    st.none(),
)

config_dicts = st.recursive(
    st.dictionaries(st.text(min_size=1, max_size=12), scalars, max_size=6),
    lambda children: st.dictionaries(
        st.text(min_size=1, max_size=12),
        st.one_of(scalars, children, st.lists(scalars, max_size=4)),
        max_size=6,
    ),
    max_leaves=24,
)


def reorder(value):
    """Rebuild ``value`` with every dict's insertion order reversed."""
    if isinstance(value, dict):
        return {k: reorder(value[k]) for k in reversed(list(value))}
    if isinstance(value, list):
        return [reorder(item) for item in value]
    return value


def refloat(value):
    """Respell integral numbers as floats (2 -> 2.0) throughout."""
    if isinstance(value, dict):
        return {k: refloat(v) for k, v in value.items()}
    if isinstance(value, list):
        return [refloat(item) for item in value]
    if isinstance(value, bool):
        return value
    if isinstance(value, int) and abs(value) < 2 ** 53:
        return float(value)
    return value


class TestCanonicalInvariance:
    @settings(max_examples=200)
    @given(config_dicts)
    def test_key_ignores_dict_ordering(self, config):
        assert config_hash(config) == config_hash(reorder(config))

    @settings(max_examples=200)
    @given(config_dicts)
    def test_key_ignores_float_formatting(self, config):
        assert config_hash(config) == config_hash(refloat(config))

    @settings(max_examples=200)
    @given(config_dicts)
    def test_canonical_json_is_a_fixpoint(self, config):
        # Canonicalizing the parse of a canonical form changes nothing.
        first = canonical_json(config)
        assert canonical_json(json.loads(first)) == first

    @settings(max_examples=200)
    @given(config_dicts, config_dicts)
    def test_distinct_configs_never_collide(self, a, b):
        # Distinctness is judged on the canonical form: {"x": 2} and
        # {"x": 2.0} are the *same* config by design.
        if canonical_json(a) != canonical_json(b):
            assert config_hash(a) != config_hash(b)

    @settings(max_examples=100)
    @given(config_dicts)
    def test_job_key_separates_simulators(self, config):
        digest = config_hash(config)
        keys = {
            job_key("t0", digest, simulator)
            for simulator in ("accel-like", "swift-basic", "swift-memory",
                              "interval", "swift-analytic")
        }
        assert len(keys) == 5

    @settings(max_examples=100)
    @given(st.floats(allow_nan=False, allow_infinity=False))
    def test_integral_floats_always_collapse(self, value):
        if value.is_integer():
            assert canonical_json(value) == canonical_json(int(value))
        else:
            # Round-trip must preserve the exact value (repr fidelity).
            assert json.loads(canonical_json(value)) == value

    @settings(max_examples=50)
    @given(st.sampled_from([float("nan"), float("inf"), float("-inf")]),
           config_dicts)
    def test_non_finite_rejected_anywhere(self, bad, config):
        poisoned = dict(config)
        poisoned["__bad__"] = bad
        with pytest.raises(ServeError):
            config_hash(poisoned)
        assert math.isnan(bad) or math.isinf(bad)
