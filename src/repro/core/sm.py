"""One streaming multiprocessor: sub-cores plus block residency.

The SM pulls thread blocks from the Block Scheduler whenever its
occupancy limits (blocks, warps, threads, registers, shared memory)
allow, distributes each block's warps across its sub-cores, and ticks
the sub-cores.  Its tick returns the earliest cycle anything inside can
change, so under the hybrid plans whole SMs sleep through memory stalls.
"""

from __future__ import annotations

from typing import Callable, List, Optional, TYPE_CHECKING

from repro.core.warp import NEVER, BlockRuntime, WarpState
from repro.errors import SimulationError
from repro.frontend.config import GPUConfig
from repro.frontend.trace import BlockTrace
from repro.sim.engine import ClockedModule, Engine
from repro.sim.module import ModelLevel, Module
from repro.sim.ports import BlockSource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.subcore import SubCore


class SMCore(ClockedModule):
    """A streaming multiprocessor."""

    component = "sm"
    level = ModelLevel.CYCLE_ACCURATE

    def __init__(
        self,
        sm_id: int,
        config: GPUConfig,
        block_source: BlockSource,
        subcore_factory: Callable[["SMCore", int], "SubCore"],
        idle_tick: bool = False,
        name: str = "",
    ) -> None:
        super().__init__(name or f"sm{sm_id}")
        self.sm_id = sm_id
        self.config = config
        self.block_source = block_source
        # Per-cycle simulators tick every SM every cycle, busy or not,
        # exactly like GPGPU-Sim's cluster loop; hybrid plans let empty
        # SMs leave the schedule.
        self.idle_tick = idle_tick
        #: One shared-memory unit serves every sub-core of this SM; the
        #: simulator factory populates this while building the first
        #: sub-core and reuses it for the rest.
        self.shared_unit: Optional[Module] = None
        self.subcores: List["SubCore"] = [
            self.add_child(subcore_factory(self, sub))
            for sub in range(config.sm.sub_cores)
        ]
        self.engine: Optional[Engine] = None
        self.last_completion = 0
        self._blocks: List[BlockRuntime] = []
        self._free_slots = list(range(config.sm.max_warps - 1, -1, -1))
        self._threads_used = 0
        self._smem_used = 0
        self._regs_used = 0
        self._warp_age = 0
        self._source_drained = False
        self._block_finished_this_tick = False

    def attach_engine(self, engine: Engine) -> None:
        self.engine = engine

    def reset(self) -> None:
        super().reset()
        self.last_completion = 0
        self._blocks.clear()
        self._free_slots = list(range(self.config.sm.max_warps - 1, -1, -1))
        self._threads_used = 0
        self._smem_used = 0
        self._regs_used = 0
        self._warp_age = 0
        self._source_drained = False
        self._block_finished_this_tick = False

    # ------------------------------------------------------------------
    # residency

    def invariants(self, cycle: int) -> List[str]:
        sm = self.config.sm
        broken: List[str] = []
        if not 0 <= self._threads_used <= sm.max_threads:
            broken.append(
                f"thread occupancy {self._threads_used} outside "
                f"[0, {sm.max_threads}]"
            )
        if not 0 <= self._smem_used <= sm.shared_mem_bytes:
            broken.append(
                f"shared-memory occupancy {self._smem_used} outside "
                f"[0, {sm.shared_mem_bytes}]"
            )
        if not 0 <= self._regs_used <= sm.registers:
            broken.append(
                f"register occupancy {self._regs_used} outside "
                f"[0, {sm.registers}]"
            )
        if len(self._blocks) > sm.max_blocks:
            broken.append(
                f"{len(self._blocks)} resident blocks exceed the "
                f"{sm.max_blocks}-block limit"
            )
        if len(self._free_slots) > sm.max_warps:
            broken.append(
                f"warp-slot leak: {len(self._free_slots)} free slots for "
                f"{sm.max_warps} total slots"
            )
        if not self._blocks and (self._threads_used or self._smem_used
                                 or self._regs_used):
            broken.append(
                "resource leak: no resident blocks but occupancy is "
                f"threads={self._threads_used} smem={self._smem_used} "
                f"regs={self._regs_used}"
            )
        return broken

    def _fits(self, block: BlockTrace) -> bool:
        sm = self.config.sm
        warps = len(block.warps)
        threads = block.num_threads
        regs = block.regs_per_thread * threads
        return (
            len(self._blocks) < sm.max_blocks
            and warps <= len(self._free_slots)
            and self._threads_used + threads <= sm.max_threads
            and self._smem_used + block.shared_mem_bytes <= sm.shared_mem_bytes
            and self._regs_used + regs <= sm.registers
        )

    def _take_blocks(self, cycle: int) -> bool:
        """Take at most one block per cycle (like GPGPU-Sim's one-CTA-per-
        cluster-per-cycle issue), so blocks spread across SMs.  Returns
        True when more blocks remain that this SM could take next cycle."""
        if self._source_drained:
            return False
        if not self._peek_fits():
            return False
        block = self.block_source.next_block(self.sm_id)
        if block is None:
            return False
        self._place_block(block, cycle)
        return self._peek_fits()

    def _peek_fits(self) -> bool:
        peek = getattr(self.block_source, "peek_block", None)
        if peek is None:
            return True
        block = peek()
        if block is None:
            self._source_drained = True
            return False
        if not self._blocks and not self._fits(block):
            raise SimulationError(
                f"{self.name}: block {block.block_id} exceeds SM capacity "
                f"(warps={len(block.warps)}, threads={block.num_threads}, "
                f"smem={block.shared_mem_bytes}, regs/thread={block.regs_per_thread})"
            )
        return self._fits(block)

    def _place_block(self, block: BlockTrace, cycle: int) -> None:
        if not self._fits(block):
            raise SimulationError(f"{self.name}: block {block.block_id} does not fit")
        runtime = BlockRuntime(block, self.sm_id)
        self._blocks.append(runtime)
        self._threads_used += block.num_threads
        self._smem_used += block.shared_mem_bytes
        self._regs_used += block.regs_per_thread * block.num_threads
        for warp_trace in block.warps:
            slot = self._free_slots.pop()
            warp = WarpState(slot, self._warp_age, warp_trace, runtime)
            self._warp_age += 1
            warp.ready_cycle = cycle
            runtime.warps.append(warp)
            subcore = min(self.subcores, key=lambda sc: sc.resident_warps)
            subcore.adopt(warp, cycle)
        self.counters.add("blocks_launched")

    def warp_finished(self, warp: WarpState, cycle: int) -> None:
        """A warp issued EXIT; free the block when it was the last one."""
        block = warp.block
        if block.warp_done():
            self._release_block(block, cycle)

    def _release_block(self, block: BlockRuntime, cycle: int) -> None:
        self._blocks.remove(block)
        trace = block.trace
        self._threads_used -= trace.num_threads
        self._smem_used -= trace.shared_mem_bytes
        self._regs_used -= trace.regs_per_thread * trace.num_threads
        for warp in block.warps:
            self._free_slots.append(warp.slot)
        for subcore in self.subcores:
            subcore.remove_block_warps(block)
        self.block_source.block_done(self.sm_id, trace, cycle)
        self.counters.add("blocks_completed")
        self._block_finished_this_tick = True

    # ------------------------------------------------------------------
    # completion plumbing

    def note_completion(self, completion_cycle: int) -> None:
        """Track the latest reservation-resolved completion (kernel tail)."""
        if completion_cycle > self.last_completion:
            self.last_completion = completion_cycle

    def request_wake(self, cycle: int) -> None:
        """Called from completion callbacks to re-arm this SM."""
        if self.engine is not None:
            self.engine.wake(self, cycle)

    # ------------------------------------------------------------------
    # clocking

    def tick(self, cycle: int) -> Optional[int]:
        self._block_finished_this_tick = False
        more_blocks = self._take_blocks(cycle)
        if not self._blocks:
            if self.idle_tick and not getattr(self.block_source, "all_done", True):
                # Stay in the per-cycle loop until the kernel retires.
                self.counters.add("empty_cycles")
                return cycle + 1
            return None  # drained, or waiting for blocks that never come
        self.counters.add("active_cycles")
        wake = cycle + 1 if more_blocks else NEVER
        for subcore in self.subcores:
            sub_wake = subcore.tick(cycle)
            if sub_wake < wake:
                wake = sub_wake
        if self._block_finished_this_tick:
            # Freed resources may admit another block immediately.
            wake = cycle + 1 if not self._blocks else min(wake, cycle + 1)
        if wake >= NEVER:
            return None  # every runnable warp awaits a callback
        return wake

    def is_done(self) -> bool:
        if self._blocks:
            return False
        if self._source_drained:
            return True
        peek = getattr(self.block_source, "peek_block", None)
        return peek is None or peek() is None
