"""Hardware Configuration Collector: the GPU configuration tree.

A :class:`GPUConfig` carries every modeling parameter the performance
model consumes — SM/sub-core resources, execution-unit counts and
latencies, both cache levels, the NoC, and DRAM.  Architects explore new
designs by editing these values (paper §III-A): the configuration is the
only channel through which hardware parameters reach the model.

All classes are frozen dataclasses validated at construction so an
inconsistent configuration fails loudly at build time, not midway through
a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.errors import ConfigError
from repro.frontend.isa import UnitClass
from repro.utils.bitops import is_pow2

#: Threads per warp on every modeled architecture.
WARP_SIZE = 32

#: Replacement policies the sectored caches support.
REPLACEMENT_POLICIES = ("LRU", "FIFO", "RANDOM")

#: Warp-scheduling policies the sub-core schedulers support.  Custom
#: policies registered via repro.core.warp_scheduler.register_policy are
#: appended here so configurations naming them validate.
SCHEDULER_POLICIES = ["GTO", "LRR", "TWO_LEVEL"]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class ExecUnitConfig:
    """One execution-unit class inside a sub-core.

    ``lanes`` is the number of SIMD lanes per sub-core (Table II's "INT:16x"
    means 16 lanes, so a 32-thread warp occupies the dispatch port for
    ``32 / 16 = 2`` cycles).  Fractional lane counts (DP: 0.5x) yield
    proportionally longer dispatch intervals.
    """

    unit: UnitClass
    lanes: float
    latency: int

    def __post_init__(self) -> None:
        _require(self.lanes > 0, f"{self.unit.value}: lanes must be positive")
        _require(self.latency >= 1, f"{self.unit.value}: latency must be >= 1")

    @property
    def dispatch_interval(self) -> int:
        """Cycles the dispatch port stays busy per warp instruction."""
        return max(1, round(WARP_SIZE / self.lanes))


@dataclass(frozen=True)
class CacheConfig:
    """A sectored cache level (L1 data cache or one L2 slice)."""

    size_bytes: int
    line_bytes: int = 128
    sector_bytes: int = 32
    assoc: int = 4
    banks: int = 4
    mshr_entries: int = 256
    mshr_max_merge: int = 8
    latency: int = 32
    replacement: str = "LRU"
    write_back: bool = False
    write_allocate: bool = False
    streaming: bool = False

    def __post_init__(self) -> None:
        _require(is_pow2(self.line_bytes), "line_bytes must be a power of two")
        _require(is_pow2(self.sector_bytes), "sector_bytes must be a power of two")
        _require(
            self.sector_bytes <= self.line_bytes,
            "sector_bytes cannot exceed line_bytes",
        )
        _require(self.size_bytes % self.line_bytes == 0, "size must be a whole number of lines")
        _require(self.assoc >= 1, "associativity must be >= 1")
        num_lines = self.size_bytes // self.line_bytes
        _require(num_lines % self.assoc == 0, "lines must divide evenly into sets")
        _require(self.banks >= 1, "banks must be >= 1")
        _require(self.mshr_entries >= 1, "mshr_entries must be >= 1")
        _require(self.mshr_max_merge >= 1, "mshr_max_merge must be >= 1")
        _require(self.latency >= 1, "latency must be >= 1")
        _require(
            self.replacement in REPLACEMENT_POLICIES,
            f"replacement must be one of {REPLACEMENT_POLICIES}",
        )

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.assoc

    @property
    def sectors_per_line(self) -> int:
        return self.line_bytes // self.sector_bytes


@dataclass(frozen=True)
class SMConfig:
    """One streaming multiprocessor: sub-cores, schedulers, and limits."""

    sub_cores: int = 4
    schedulers_per_subcore: int = 1
    scheduler_policy: str = "GTO"
    issue_width: int = 1
    exec_units: Tuple[ExecUnitConfig, ...] = ()
    ldst_units: int = 4
    ldst_throughput: int = 4          # sector transactions accepted per cycle
    max_warps: int = 32
    max_blocks: int = 16
    max_threads: int = 1024
    registers: int = 65536
    shared_mem_bytes: int = 65536
    register_banks: int = 8
    operand_collector_units: int = 4
    ibuffer_entries: int = 8
    fetch_latency: int = 4            # i-cache hit latency for fetch modeling
    decode_latency: int = 2
    shared_mem_latency: int = 24
    shared_mem_banks: int = 32

    def __post_init__(self) -> None:
        _require(self.sub_cores >= 1, "sub_cores must be >= 1")
        _require(
            self.scheduler_policy in SCHEDULER_POLICIES,
            f"scheduler_policy must be one of {SCHEDULER_POLICIES}",
        )
        _require(self.issue_width >= 1, "issue_width must be >= 1")
        _require(self.exec_units, "at least one execution unit class is required")
        units = [u.unit for u in self.exec_units]
        _require(len(units) == len(set(units)), "duplicate execution unit class")
        _require(self.ldst_units >= 1, "ldst_units must be >= 1")
        _require(self.max_warps >= 1, "max_warps must be >= 1")
        _require(self.max_warps % self.sub_cores == 0, "max_warps must divide across sub-cores")
        _require(self.max_threads >= WARP_SIZE, "max_threads must hold at least one warp")
        _require(self.max_blocks >= 1, "max_blocks must be >= 1")
        _require(self.registers >= 1, "registers must be positive")
        _require(self.shared_mem_bytes >= 0, "shared memory cannot be negative")

    def unit_config(self, unit: UnitClass) -> ExecUnitConfig:
        """Return the configuration of one unit class."""
        for entry in self.exec_units:
            if entry.unit == unit:
                return entry
        raise ConfigError(f"SM has no {unit.value} execution units")

    @property
    def units_by_class(self) -> Dict[UnitClass, ExecUnitConfig]:
        return {entry.unit: entry for entry in self.exec_units}

    @property
    def max_warps_per_subcore(self) -> int:
        return self.max_warps // self.sub_cores


@dataclass(frozen=True)
class NoCConfig:
    """SM <-> memory-partition crossbar interconnect."""

    flit_bytes: int = 32
    latency: int = 8
    flits_per_cycle: int = 1     # per partition port, per direction

    def __post_init__(self) -> None:
        _require(is_pow2(self.flit_bytes), "flit_bytes must be a power of two")
        _require(self.latency >= 0, "latency cannot be negative")
        _require(self.flits_per_cycle >= 1, "flits_per_cycle must be >= 1")


@dataclass(frozen=True)
class DRAMConfig:
    """Off-chip memory: one queue-served channel per memory partition."""

    latency: int = 227
    banks_per_partition: int = 16
    row_bytes: int = 1024
    row_hit_latency: int = 40
    bytes_per_cycle: int = 16    # per partition

    def __post_init__(self) -> None:
        _require(self.latency >= 1, "latency must be >= 1")
        _require(self.banks_per_partition >= 1, "banks_per_partition must be >= 1")
        _require(is_pow2(self.row_bytes), "row_bytes must be a power of two")
        _require(self.row_hit_latency >= 1, "row_hit_latency must be >= 1")
        _require(
            self.row_hit_latency <= self.latency,
            "a row hit cannot be slower than a row miss",
        )
        _require(self.bytes_per_cycle >= 1, "bytes_per_cycle must be >= 1")


@dataclass(frozen=True)
class GPUConfig:
    """The full modeled GPU (paper Figure 1)."""

    name: str
    architecture: str
    graphics_processor: str
    num_sms: int
    cuda_cores: int
    sm: SMConfig = field(default_factory=SMConfig)
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(size_bytes=32 * 1024))
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(size_bytes=4 * 1024 * 1024, latency=188)
    )
    memory_partitions: int = 22
    noc: NoCConfig = field(default_factory=NoCConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    core_clock_mhz: int = 1350

    def __post_init__(self) -> None:
        _require(bool(self.name), "GPU needs a name")
        _require(self.num_sms >= 1, "num_sms must be >= 1")
        _require(self.cuda_cores >= 1, "cuda_cores must be >= 1")
        _require(self.memory_partitions >= 1, "memory_partitions must be >= 1")
        _require(
            self.l2.size_bytes % self.memory_partitions == 0,
            "L2 must split evenly across memory partitions",
        )
        _require(self.core_clock_mhz >= 1, "core clock must be positive")

    @property
    def l2_slice(self) -> CacheConfig:
        """Configuration of one per-partition L2 slice."""
        return replace(self.l2, size_bytes=self.l2.size_bytes // self.memory_partitions)

    def with_sm(self, **changes) -> "GPUConfig":
        """Return a copy with SM-level parameters replaced (design-space helper)."""
        return replace(self, sm=replace(self.sm, **changes))

    def with_l1(self, **changes) -> "GPUConfig":
        """Return a copy with L1 parameters replaced."""
        return replace(self, l1=replace(self.l1, **changes))

    def with_l2(self, **changes) -> "GPUConfig":
        """Return a copy with L2 parameters replaced."""
        return replace(self, l2=replace(self.l2, **changes))
