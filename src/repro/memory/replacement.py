"""Cache replacement policies.

The paper's motivation section calls out that pure analytical cache
models are locked to LRU (reuse-distance theory), while a simulated cache
can swap policies freely — so the sectored cache takes its policy as a
pluggable object.  LRU, FIFO, and (deterministic) Random are provided.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence

from repro.errors import ConfigError


class ReplacementPolicy(ABC):
    """Per-set victim selection. One policy instance serves one cache set."""

    @abstractmethod
    def on_fill(self, way: int) -> None:
        """A line was installed in ``way``."""

    @abstractmethod
    def on_access(self, way: int) -> None:
        """The line in ``way`` was hit."""

    @abstractmethod
    def victim(self, candidates: Sequence[int]) -> int:
        """Pick the way to evict among ``candidates`` (never empty)."""


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used: evict the candidate touched longest ago."""

    def __init__(self, assoc: int) -> None:
        self._stamp = 0
        self._last_use: List[int] = [-1] * assoc

    def _touch(self, way: int) -> None:
        self._stamp += 1
        self._last_use[way] = self._stamp

    def on_fill(self, way: int) -> None:
        self._touch(way)

    def on_access(self, way: int) -> None:
        self._touch(way)

    def victim(self, candidates: Sequence[int]) -> int:
        if len(candidates) == 1:
            return candidates[0]
        # Bound-method key avoids a lambda frame per comparison.
        return min(candidates, key=self._last_use.__getitem__)


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out: evict the candidate filled longest ago."""

    def __init__(self, assoc: int) -> None:
        self._stamp = 0
        self._fill_order: List[int] = [-1] * assoc

    def on_fill(self, way: int) -> None:
        self._stamp += 1
        self._fill_order[way] = self._stamp

    def on_access(self, way: int) -> None:
        # Hits do not affect FIFO ordering.
        pass

    def victim(self, candidates: Sequence[int]) -> int:
        if len(candidates) == 1:
            return candidates[0]
        return min(candidates, key=self._fill_order.__getitem__)


class RandomPolicy(ReplacementPolicy):
    """Pseudo-random victim selection with a per-set deterministic stream."""

    def __init__(self, assoc: int, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def on_fill(self, way: int) -> None:
        pass

    def on_access(self, way: int) -> None:
        pass

    def victim(self, candidates: Sequence[int]) -> int:
        return candidates[self._rng.randrange(len(candidates))]


def make_replacement_policy(
    name: str, assoc: int, seed: Optional[int] = None
) -> ReplacementPolicy:
    """Instantiate a policy by configuration name (``LRU``/``FIFO``/``RANDOM``)."""
    name = name.upper()
    if name == "LRU":
        return LRUPolicy(assoc)
    if name == "FIFO":
        return FIFOPolicy(assoc)
    if name == "RANDOM":
        return RandomPolicy(assoc, seed=0 if seed is None else seed)
    raise ConfigError(f"unknown replacement policy {name!r}")
