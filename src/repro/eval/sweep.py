"""Design-space sweep utility.

The whole point of Swift-Sim is fast design-space exploration, so the
package ships the loop architects would otherwise write by hand: take a
base GPU, a grid of parameter overrides, and a set of applications;
simulate every combination (optionally with the multiprocess driver);
return a tidy result table.

Overrides address nested configuration fields with dotted paths::

    sweep = DesignSpaceSweep(
        base_gpu,
        {"l1.size_bytes": [32 * 1024, 64 * 1024],
         "sm.scheduler_policy": ["GTO", "LRR"]},
    )
    table = sweep.run(SwiftSimBasic, [make_app("hotspot")])

Every row carries the override values, the application, total cycles,
and IPC, ready for plotting or tabulation (``render()``).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field, replace
from typing import Any, List, Mapping, Sequence, Type

from repro.errors import ConfigError
from repro.frontend.config import GPUConfig
from repro.frontend.trace import ApplicationTrace
from repro.simulators.base import PlanSimulator


def apply_override(gpu: GPUConfig, path: str, value: Any) -> GPUConfig:
    """Return a copy of ``gpu`` with the dotted-``path`` field replaced."""
    parts = path.split(".")
    if not all(parts):
        raise ConfigError(f"malformed override path {path!r}")
    if len(parts) == 1:
        if not hasattr(gpu, parts[0]):
            raise ConfigError(f"GPUConfig has no field {parts[0]!r}")
        return replace(gpu, **{parts[0]: value})
    if len(parts) == 2:
        section_name, leaf = parts
        section = getattr(gpu, section_name, None)
        if section is None:
            raise ConfigError(f"GPUConfig has no section {section_name!r}")
        if not hasattr(section, leaf):
            raise ConfigError(f"{section_name!r} has no field {leaf!r}")
        return replace(gpu, **{section_name: replace(section, **{leaf: value})})
    raise ConfigError(f"override path {path!r} nests too deep (max 2 levels)")


@dataclass(frozen=True)
class SweepPoint:
    """One (configuration, application) measurement."""

    overrides: Mapping[str, Any]
    app_name: str
    total_cycles: int
    ipc: float
    wall_seconds: float


@dataclass
class SweepResult:
    """All measurements of one sweep."""

    points: List[SweepPoint] = field(default_factory=list)

    def best(self, app_name: str) -> SweepPoint:
        """The fastest configuration for one application."""
        candidates = [p for p in self.points if p.app_name == app_name]
        if not candidates:
            raise ConfigError(f"no sweep points for application {app_name!r}")
        return min(candidates, key=lambda p: p.total_cycles)

    def render(self) -> str:
        if not self.points:
            return "(empty sweep)"
        keys = sorted(self.points[0].overrides)
        header = " | ".join([*keys, "app", "cycles", "ipc"])
        lines = [header, "-" * len(header)]
        for point in self.points:
            cells = [str(point.overrides[k]) for k in keys]
            cells += [point.app_name, str(point.total_cycles), f"{point.ipc:.3f}"]
            lines.append(" | ".join(cells))
        return "\n".join(lines)


class DesignSpaceSweep:
    """Cartesian sweep over configuration overrides."""

    def __init__(self, base: GPUConfig, grid: Mapping[str, Sequence[Any]]) -> None:
        if not grid:
            raise ConfigError("sweep grid cannot be empty")
        self.base = base
        self.grid = {path: list(values) for path, values in grid.items()}
        for path, values in self.grid.items():
            if not values:
                raise ConfigError(f"override {path!r} has no values")
            # Validate every value eagerly: a typo should fail before the
            # sweep burns simulation time.
            for value in values:
                apply_override(base, path, value)

    def configurations(self):
        """Yield (overrides dict, GPUConfig) for every grid point."""
        paths = sorted(self.grid)
        for combo in itertools.product(*(self.grid[p] for p in paths)):
            overrides = dict(zip(paths, combo))
            gpu = self.base
            for path, value in overrides.items():
                gpu = apply_override(gpu, path, value)
            yield overrides, gpu

    def run(
        self,
        simulator_cls: Type[PlanSimulator],
        apps: Sequence[ApplicationTrace],
        **simulator_kwargs,
    ) -> SweepResult:
        """Simulate every (configuration, app) pair sequentially."""
        result = SweepResult()
        for overrides, gpu in self.configurations():
            simulator = simulator_cls(gpu, **simulator_kwargs)
            for app in apps:
                run = simulator.simulate(app, gather_metrics=False)
                result.points.append(
                    SweepPoint(
                        overrides=overrides,
                        app_name=app.name,
                        total_cycles=run.total_cycles,
                        ipc=run.ipc,
                        wall_seconds=run.wall_time_seconds,
                    )
                )
        return result

    def run_batched(
        self,
        apps: Sequence[ApplicationTrace],
        simulator_cls: Type = None,
    ) -> SweepResult:
        """Resolve the whole grid with one vectorized call per app.

        Uses the closed-form tier's ``evaluate_batch``: every grid point
        becomes one lane of a batched parameter array, so thousands of
        (app, config) points cost one tasklist pass plus vectorized
        arithmetic.  Each lane is bit-identical to what ``run`` with
        ``SwiftSimAnalytic`` would report, point for point.
        """
        if simulator_cls is None:
            from repro.simulators.swift_analytic import SwiftSimAnalytic

            simulator_cls = SwiftSimAnalytic
        if not hasattr(simulator_cls, "evaluate_batch"):
            raise ConfigError(
                f"{simulator_cls.__name__} has no evaluate_batch; "
                f"use run() for engine-based simulators"
            )
        grid_points = list(self.configurations())
        configs = [gpu for __, gpu in grid_points]
        simulator = simulator_cls(self.base)
        lanes = []
        for app in apps:
            started = time.perf_counter()
            totals = simulator.evaluate_batch(app, configs)
            share = (time.perf_counter() - started) / len(grid_points)
            lanes.append((app, totals, share))
        result = SweepResult()
        # Emit in run()'s (configuration, app) order so the two paths
        # produce interchangeable tables.
        for lane, (overrides, __) in enumerate(grid_points):
            for app, totals, share in lanes:
                cycles = int(totals[lane])
                result.points.append(
                    SweepPoint(
                        overrides=overrides,
                        app_name=app.name,
                        total_cycles=cycles,
                        ipc=app.num_instructions / cycles if cycles else 0.0,
                        wall_seconds=share,
                    )
                )
        return result
