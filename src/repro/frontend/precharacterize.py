"""Static pre-characterization: traces -> architecture-independent tasklists.

The fully-analytical simulator tier (PPT-GPU idiom; see
``docs/analytic-tier.md``) splits modeling into two layers:

1. a **pre-characterization pass** (this module) that walks each loaded
   trace exactly once and reduces every kernel to a small, *architecture-
   independent* summary — the **tasklist**: instruction mix, per-warp
   register-dependence critical paths, coalescing totals, and sector
   reuse-distance distributions;
2. a **closed-form timing model** (:mod:`repro.simulators.swift_analytic`)
   that turns a tasklist plus a batch of GPU parameter vectors into
   predicted cycles with vectorized arithmetic.

Nothing in a tasklist depends on a :class:`GPUConfig`: dependence chains
are recorded as *term counts* (how many INT ops with latency factor 2 sit
on the critical path), not cycle counts, and memory locality is recorded
as *reuse-distance distributions*, not hit rates, so one pass serves any
number of candidate architectures.  Coalescing uses the fixed
128-byte-line / 32-byte-sector geometry every modeled GPU shares.

Tasklists are pure functions of the trace: same trace values in, same
tasklist values out, no RNG, no wall-clock, no live handles — they are
picklable and safe to ship across process boundaries (the sweep-payload
lint family covers this module).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple
from weakref import WeakKeyDictionary

try:  # numpy is required for the analytic tier, but its absence must not
    import numpy as _np  # break `import repro` for the engine-based tiers.
except ImportError:  # pragma: no cover - exercised only on minimal installs
    _np = None

from repro.errors import SimulationError
from repro.frontend.isa import InstKind, MemSpace, UnitClass
from repro.frontend.trace import ApplicationTrace, KernelTrace
from repro.memory.access import coalesce
from repro.memory.reuse_distance import LRUStack

#: Coalescing geometry shared by every modeled GPU (Turing/Ampere).
LINE_BYTES = 128
SECTOR_BYTES = 32

#: Chain-term keys that are not (unit, latency_factor) ALU terms.
BRANCH_TERM = ("branch",)
SYNC_TERM = ("sync",)
LOAD_TERM = ("load",)
STORE_TERM = ("store",)
SHARED_TERM = ("shared",)


def numpy_available() -> bool:
    """Whether the analytic tier can run at all on this install."""
    return _np is not None


def _require_numpy():
    if _np is None:
        raise SimulationError(
            "the analytic tier requires numpy; install it or use the "
            "engine-based simulators (swift-basic / swift-memory)"
        )
    return _np


def _alu_term(unit: UnitClass, latency_factor: int) -> Tuple[str, str, int]:
    return ("alu", unit.value, latency_factor)


@dataclass
class KernelTasklist:
    """Architecture-independent summary of one kernel launch.

    Warps are *in-order*: any stalled instruction blocks everything
    behind it, so per-warp timing is captured by the warp's **dependence
    skeleton** — the sequence of pricing terms plus, per instruction, the
    index of the producer it must wait for (``-1`` if none).  Warps with
    identical skeletons are deduplicated into :class:`WarpClass` groups
    (SIMT kernels typically have only a handful), and the timing model
    replays each class once as an in-order scoreboard walk, vectorized
    over the batched config axis.  ``warp_counts[w, t]`` counts all
    priced instructions of term ``chain_terms[t]`` in warp ``w`` (the
    issue-bound component).

    ``load_inst_distances`` holds, per global/local load instruction, the
    worst (largest) sector reuse-distance among its transactions
    (``inf`` = cold), sorted so hit rates for any capacity fall out of a
    ``searchsorted``; ``load_access_distances`` is the same per
    *transaction* (for bandwidth accounting).
    """

    name: str
    num_blocks: int
    warps_per_block: int
    threads_per_block: int
    shared_mem_bytes: int
    regs_per_thread: int
    num_instructions: int
    #: ALU issue counts keyed by (unit value, latency factor).
    unit_counts: Dict[Tuple[str, int], int] = field(default_factory=dict)
    ldst_insts: int = 0
    shared_insts: int = 0
    branch_insts: int = 0
    sync_insts: int = 0
    global_loads: int = 0
    global_stores: int = 0
    load_transactions: int = 0
    store_transactions: int = 0
    chain_terms: Tuple[tuple, ...] = ()
    warp_counts: object = None  # np.ndarray (num_warps, num_terms), all insts
    warp_classes: Tuple["WarpClass", ...] = ()
    load_inst_distances: object = None  # np.ndarray, sorted, inf = cold
    load_access_distances: object = None  # np.ndarray, sorted, inf = cold

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KernelTasklist):
            return NotImplemented
        np = _require_numpy()
        scalars = (
            "name", "num_blocks", "warps_per_block", "threads_per_block",
            "shared_mem_bytes", "regs_per_thread", "num_instructions",
            "unit_counts", "ldst_insts", "shared_insts", "branch_insts",
            "sync_insts", "global_loads", "global_stores",
            "load_transactions", "store_transactions", "chain_terms",
            "warp_classes",
        )
        return all(
            getattr(self, name) == getattr(other, name) for name in scalars
        ) and all(
            np.array_equal(getattr(self, name), getattr(other, name))
            for name in ("warp_counts",
                         "load_inst_distances", "load_access_distances")
        )


@dataclass
class ApplicationTasklist:
    """Tasklists for every kernel of one application, in launch order."""

    app_name: str
    num_instructions: int
    kernels: List[KernelTasklist] = field(default_factory=list)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ApplicationTasklist):
            return NotImplemented
        return (
            self.app_name == other.app_name
            and self.num_instructions == other.num_instructions
            and self.kernels == other.kernels
        )


# ----------------------------------------------------------------------
# dependence skeletons

#: Terms whose producers carry long (memory-class) latencies; barriers
#: drain these before proceeding.
_MEMORY_TERMS = (LOAD_TERM, SHARED_TERM)


@dataclass
class WarpClass:
    """A group of warps sharing one dependence skeleton.

    ``term_seq[i]`` indexes :attr:`KernelTasklist.chain_terms` for the
    ``i``-th priced instruction; ``producer[i]`` is the position whose
    result instruction ``i`` must wait for (``-1`` if none).  The timing
    model replays the skeleton once per class as an in-order scoreboard
    walk — exact for register dependences, memory latencies priced at
    their Eq. 1 expectations — vectorized over the config axis.
    """

    count: int  # warps in the kernel with this skeleton
    term_seq: object = None  # np.ndarray (n,), indexes chain_terms
    producer: object = None  # np.ndarray (n,), position or -1

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WarpClass):
            return NotImplemented
        np = _require_numpy()
        return (
            self.count == other.count
            and np.array_equal(self.term_seq, other.term_seq)
            and np.array_equal(self.producer, other.producer)
        )


def _warp_skeleton(warp) -> Tuple[Tuple[tuple, ...], Tuple[int, ...]]:
    """One warp's dependence skeleton: (terms, producer positions).

    Warps issue strictly in order, so per-warp solo time is fully
    determined by each instruction's pricing term plus the most
    constraining producer it waits for: the latest writer of any of its
    source/destination registers, preferring memory-class writers (their
    latencies dominate).  Barriers and membars drain the pipeline, so
    they wait on the most recent memory-class instruction (or, failing
    that, the immediately preceding instruction) even without register
    operands.  EXIT is unpriced — the timing model's final drain waits
    for every producer's completion instead.
    """
    last_writer: Dict[int, int] = {}
    terms: List[tuple] = []
    producers: List[int] = []
    last_memory = -1  # position of the most recent memory-class inst
    for inst in warp.instructions:
        term = _chain_term(inst)
        if term is None:  # EXIT
            continue
        position = len(terms)
        producer = -1
        if inst.kind in (InstKind.BARRIER, InstKind.MEMBAR):
            producer = last_memory if last_memory >= 0 else position - 1
        else:
            memory_producer = -1
            for reg in inst.src_regs + inst.dest_regs:
                writer = last_writer.get(reg, -1)
                if writer > producer:
                    producer = writer
                if writer >= 0 and terms[writer] in _MEMORY_TERMS:
                    memory_producer = max(memory_producer, writer)
            if memory_producer >= 0:
                producer = memory_producer
        terms.append(term)
        producers.append(producer)
        if term in _MEMORY_TERMS:
            last_memory = position
        for reg in inst.dest_regs:
            last_writer[reg] = position
    return tuple(terms), tuple(producers)


def _chain_term(inst) -> tuple:
    """The pricing term an instruction contributes to a dependence chain
    (``None`` for EXIT, which costs nothing once the pipeline drained)."""
    kind = inst.kind
    if kind is InstKind.EXIT:
        return None
    if kind is InstKind.BRANCH:
        return BRANCH_TERM
    if kind in (InstKind.BARRIER, InstKind.MEMBAR):
        return SYNC_TERM
    if inst.is_memory:
        if inst.mem_space is MemSpace.SHARED:
            return SHARED_TERM
        if kind is InstKind.STORE:
            return STORE_TERM
        return LOAD_TERM
    return _alu_term(inst.unit, inst.latency_factor)


# ----------------------------------------------------------------------
# the pass


def _characterize_kernel(kernel: KernelTrace) -> KernelTasklist:
    np = _require_numpy()
    tasklist = KernelTasklist(
        name=kernel.name,
        num_blocks=len(kernel.blocks),
        warps_per_block=max(len(block.warps) for block in kernel.blocks),
        threads_per_block=max(block.num_threads for block in kernel.blocks),
        shared_mem_bytes=max(block.shared_mem_bytes for block in kernel.blocks),
        regs_per_thread=max(block.regs_per_thread for block in kernel.blocks),
        num_instructions=kernel.num_instructions,
    )
    stack = LRUStack()  # one kernel-wide sector stream (see the docs)
    inst_distances: List[float] = []
    access_distances: List[float] = []
    skeletons: Dict[Tuple[tuple, tuple], int] = {}  # skeleton -> warp count
    warp_rows: List[Dict[tuple, int]] = []
    for block in kernel.blocks:
        for warp in block.warps:
            skeleton = _warp_skeleton(warp)
            skeletons[skeleton] = skeletons.get(skeleton, 0) + 1
            warp_row: Dict[tuple, int] = {}
            warp_rows.append(warp_row)
            for inst in warp.instructions:
                kind = inst.kind
                if kind is InstKind.EXIT:
                    continue
                term = _chain_term(inst)
                warp_row[term] = warp_row.get(term, 0) + 1
                if kind is InstKind.BRANCH:
                    tasklist.branch_insts += 1
                    continue
                if kind in (InstKind.BARRIER, InstKind.MEMBAR):
                    tasklist.sync_insts += 1
                    continue
                if inst.is_memory:
                    if inst.mem_space is MemSpace.SHARED:
                        tasklist.shared_insts += 1
                        continue
                    tasklist.ldst_insts += 1
                    transactions = coalesce(
                        inst.addresses, LINE_BYTES, SECTOR_BYTES
                    )
                    is_store = kind is InstKind.STORE
                    worst = 0.0
                    for tx in transactions:
                        distance = stack.access((tx.line_addr, tx.sector))
                        value = math.inf if distance is None else float(distance)
                        if not is_store:
                            access_distances.append(value)
                            worst = max(worst, value)
                    if is_store:
                        tasklist.global_stores += 1
                        tasklist.store_transactions += len(transactions)
                    else:
                        tasklist.global_loads += 1
                        tasklist.load_transactions += len(transactions)
                        inst_distances.append(worst)
                    continue
                key = (inst.unit.value, inst.latency_factor)
                tasklist.unit_counts[key] = tasklist.unit_counts.get(key, 0) + 1
    terms = sorted({term for row in warp_rows for term in row})
    term_index = {term: i for i, term in enumerate(terms)}
    warp_counts = np.zeros((len(warp_rows), len(terms)), dtype=np.int64)
    for row_number, row in enumerate(warp_rows):
        for term, count in row.items():
            warp_counts[row_number, term_index[term]] = count
    tasklist.chain_terms = tuple(terms)
    tasklist.warp_counts = warp_counts
    tasklist.warp_classes = tuple(
        WarpClass(
            count=count,
            term_seq=np.asarray(
                [term_index[term] for term in skeleton_terms], dtype=np.int64
            ),
            producer=np.asarray(skeleton_producers, dtype=np.int64),
        )
        for (skeleton_terms, skeleton_producers), count in sorted(
            skeletons.items()
        )
    )
    tasklist.load_inst_distances = np.sort(
        np.asarray(inst_distances, dtype=np.float64)
    )
    tasklist.load_access_distances = np.sort(
        np.asarray(access_distances, dtype=np.float64)
    )
    return tasklist


#: Memoized tasklists, keyed weakly on the trace object.  Purely a time
#: saver: tasklists are value-deterministic, so a re-loaded (different
#: identity, equal value) trace characterizes to an equal tasklist.
_TASKLIST_MEMO: "WeakKeyDictionary[ApplicationTrace, ApplicationTasklist]" = (
    WeakKeyDictionary()
)


def precharacterize(app: ApplicationTrace) -> ApplicationTasklist:
    """Reduce ``app`` to its architecture-independent tasklist (memoized
    per trace object; a pure function of the trace values)."""
    _require_numpy()
    cached = _TASKLIST_MEMO.get(app)
    if cached is not None:
        return cached
    tasklist = ApplicationTasklist(
        app_name=app.name,
        num_instructions=app.num_instructions,
        kernels=[_characterize_kernel(kernel) for kernel in app.kernels],
    )
    _TASKLIST_MEMO[app] = tasklist
    return tasklist


def warps_in_kernel(tasklist: KernelTasklist) -> int:
    """Total warps launched by the kernel (for IPC-style sanity checks)."""
    return int(tasklist.warp_counts.shape[0]) if tasklist.warp_counts is not None else 0
