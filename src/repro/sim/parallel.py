"""Conservative-lookahead parallel discrete-event engine (PDES core).

:class:`ShardedEngine` partitions the module graph across *shards*
according to a :class:`~repro.sim.shard.ShardPlan` — in production, the
plan built from the static partition manifest
(:mod:`repro.analyze.partition`) — and runs each shard on its own
:class:`~repro.sim.engine.Engine` instance.  It is a drop-in for
``Engine`` at the call sites that matter (``add`` / ``wake`` / ``run`` /
``attach_checker`` / ``cycle`` / ``modules``), so the simulators, the
guard, and the checkers all work unchanged on top of it.

Two execution modes, one contract — **bit-equivalence with the serial
engine**:

``lockstep``
    The coordinator always advances the shard whose earliest live event
    has the globally minimal ``(cycle, rank)`` key.  Because ranks are
    globally unique (assigned in registration order across all shards),
    this reproduces the serial engine's pop order *exactly*, tick for
    tick — even for module graphs that communicate through synchronous
    port calls.  This is the mode the real simulators run in: their
    port edges (``try_issue``, ``access_global``) return results in the
    same call, which no latency channel can defer without changing
    timing.  Lockstep is the conservative floor — correct for every
    graph, parallel in structure (per-shard engines, heaps, and clock
    domains) but serialized in time.

``windowed``
    True conservative PDES: shards run independently through a window
    ``[T, T + lookahead)`` and synchronize only at window boundaries
    (the global :meth:`EngineChecker.on_cycle_start` seam).  Legal only
    when every cross-shard interaction goes through a
    :class:`~repro.sim.shard.ShardChannel` with ``latency >=
    lookahead`` — then a message sent inside a window delivers at or
    after the window end, so no shard can observe another mid-window.
    Delivery happens via :class:`~repro.sim.shard.ChannelEndpoint`
    modules at exact ``(cycle, rank)`` slots, which is why the windowed
    schedule is provably identical to the serial one.  Direct
    cross-shard wakes in this mode raise
    :class:`~repro.errors.ShardSyncError` (the runtime counterpart of
    static rule SH501).

:func:`run_sharded_processes` runs the windowed protocol with one
worker *process* per shard: each worker builds its shard from an
importable builder, windows execute concurrently, and cross-shard
messages are exchanged at barriers keyed by their sender-side
``(deliver, seq)`` — preserving the exact delivery order.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    CycleBudgetExceeded,
    ShardCrash,
    ShardHang,
    ShardSyncError,
    SimulationError,
)
from repro.sim.engine import (
    ClockedModule,
    Engine,
    EngineChecker,
    EngineConfig,
)
from repro.sim.shard import ChannelEndpoint, ShardChannel, ShardPlan

MODES = ("lockstep", "windowed")


class _ShardForwarder(EngineChecker):
    """Per-shard checker that forwards tick-level callbacks globally.

    Each shard engine carries one of these; it relays
    ``on_schedule``/``on_wake``/``on_tick``/``on_tick_end`` to whatever
    checker is attached to the owning :class:`ShardedEngine` *at call
    time* (so late ``attach_checker`` works), and drops
    ``on_add``/``on_cycle_start``/``on_run_end`` — those are global
    events the coordinator owns and fires exactly once.
    """

    def __init__(self, owner: "ShardedEngine") -> None:
        self._owner = owner

    def on_schedule(self, module: ClockedModule, cycle: int, now: int) -> None:
        checker = self._owner.checker
        if checker is not None:
            checker.on_schedule(module, cycle, now)

    def on_wake(self, module: ClockedModule, cycle: int, now: int) -> None:
        checker = self._owner.checker
        if checker is not None:
            checker.on_wake(module, cycle, now)

    def on_tick(self, module: ClockedModule, cycle: int, rank: int) -> None:
        checker = self._owner.checker
        if checker is not None:
            checker.on_tick(module, cycle, rank)

    def on_tick_end(self, module: ClockedModule, cycle: int) -> None:
        checker = self._owner.checker
        if checker is not None:
            checker.on_tick_end(module, cycle)


@dataclass
class ShardStats:
    """Run accounting the CLI and bench artifacts report."""

    mode: str = "lockstep"
    plan: str = ""
    lookahead: int = 1
    ticks: Dict[str, int] = field(default_factory=dict)
    windows: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0

    def merge_channel(self, channel: ShardChannel) -> None:
        self.messages_sent += channel.sent
        self.messages_delivered += channel.delivered

    def describe(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "plan": self.plan,
            "lookahead": self.lookahead,
            "shards": dict(self.ticks),
            "windows": self.windows,
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
        }


class ShardedEngine:
    """Engine-compatible coordinator over per-shard :class:`Engine` s.

    See the module docstring for the two modes and their equivalence
    arguments.  Construction mirrors ``Engine(allow_jump, start_cycle)``
    with the plan prepended; shard engines are created eagerly in plan
    order so their identity and iteration order are deterministic.
    """

    def __init__(
        self,
        plan: ShardPlan,
        allow_jump: bool = True,
        start_cycle: int = 0,
        *,
        mode: str = "lockstep",
        lookahead: int = 1,
    ) -> None:
        if mode not in MODES:
            raise SimulationError(
                f"unknown sharded engine mode {mode!r} (expected one of {MODES})"
            )
        if lookahead < 1:
            raise SimulationError(
                f"lookahead must be >= 1 cycle (got {lookahead})"
            )
        self.plan = plan
        self.mode = mode
        self.lookahead = lookahead
        self.allow_jump = allow_jump
        self.cycle = start_cycle
        self.config = EngineConfig(allow_jump=allow_jump, start_cycle=start_cycle)
        self.checker: Optional[EngineChecker] = None
        #: Optional fault-injection hook consulted at every global cycle
        #: boundary — the same consistent cut the checker seam uses.  A
        #: supervised run (:mod:`repro.sim.shardfault`) installs a
        #: callable that raises :class:`~repro.errors.ShardFault` at its
        #: chaos-chosen boundary; pure observation otherwise, so the
        #: schedule is untouched when no fault fires.
        self.fault_injector: Optional[Callable[[int], None]] = None
        self._forwarder = _ShardForwarder(self)
        self._engines: Dict[str, Engine] = {}
        for shard in plan.shards:
            engine = Engine(allow_jump=allow_jump, start_cycle=start_cycle)
            engine.attach_checker(self._forwarder)
            self._engines[shard] = engine
        self._owner: Dict[ClockedModule, str] = {}
        self._modules: List[ClockedModule] = []
        self._next_rank = 0
        self._channels: List[ShardChannel] = []
        self._running_shard: Optional[str] = None
        self.stats = ShardStats(
            mode=mode, plan=plan.name, lookahead=lookahead,
            ticks={shard: 0 for shard in plan.shards},
        )

    # ------------------------------------------------------------------
    # Engine-compatible surface

    def attach_checker(self, checker: EngineChecker) -> None:
        self.checker = checker

    def add(
        self, module: ClockedModule, start_cycle: int = 0,
        rank: Optional[int] = None,
    ) -> None:
        """Register ``module`` on the shard the plan assigns it to.

        Ranks are assigned in global registration order (across shards),
        so same-cycle tie-breaking matches a serial engine that saw the
        identical ``add`` sequence.
        """
        if module in self._owner:
            raise SimulationError(
                f"module {module.name!r} is already registered with this engine"
            )
        shard = self.plan.shard_for_module(module)
        engine = self._engines[shard]
        if rank is None:
            rank = self._next_rank
        self._next_rank = max(self._next_rank, rank) + 1
        self._owner[module] = shard
        self._modules.append(module)
        if isinstance(module, ChannelEndpoint):
            module.attach_engine(self)
            if module.channel not in self._channels:
                self.register_channel(module.channel)
        if self.checker is not None:
            self.checker.on_add(module, start_cycle)
        engine.add(module, start_cycle, rank=rank)

    def wake(self, module: ClockedModule, cycle: int) -> None:
        shard = self._owner.get(module)
        if shard is None:
            raise SimulationError(
                f"cannot wake module {module.name!r}: it was never registered "
                f"with this engine via add()"
            )
        if (
            self.mode == "windowed"
            and self._running_shard is not None
            and shard != self._running_shard
        ):
            raise ShardSyncError(
                f"direct cross-shard wake of {module.name!r} (shard {shard!r}) "
                f"from shard {self._running_shard!r} during a window — "
                f"cross-shard communication must go through a ShardChannel "
                f"with latency >= the lookahead ({self.lookahead})"
            )
        engine = self._engines[shard]
        # Sync the target shard's clock to the global clock first, so the
        # wake-before-now clamp uses the same "now" a serial engine would.
        if engine.cycle < self.cycle:
            engine.cycle = self.cycle
        engine.wake(module, cycle)

    @property
    def modules(self) -> List[ClockedModule]:
        return list(self._modules)

    # ------------------------------------------------------------------
    # sharded extras

    @property
    def engines(self) -> Dict[str, Engine]:
        """Per-shard engines, in plan order (read-only view)."""
        return dict(self._engines)

    def shard_of(self, module: ClockedModule) -> Optional[str]:
        return self._owner.get(module)

    def register_channel(self, channel: ShardChannel) -> None:
        """Declare a cross-shard channel this engine coordinates."""
        if channel not in self._channels:
            self._channels.append(channel)

    def shard_info(self) -> Dict[str, object]:
        """Per-shard framing for guard checkpoint metadata."""
        return {
            "count": len(self._engines),
            "mode": self.mode,
            "plan": self.plan.name,
            "names": list(self._engines),
            "clocks": {name: eng.cycle for name, eng in self._engines.items()},
        }

    # ------------------------------------------------------------------
    # dispatch

    def run(self, max_cycles: int = 1_000_000_000) -> int:
        """Run until every shard drains; return the final cycle.

        Same termination contract as :meth:`Engine.run`: raises
        :class:`CycleBudgetExceeded` past ``max_cycles`` and
        :class:`SimulationError` if any module goes idle with work
        outstanding.
        """
        if self.mode == "windowed":
            last_cycle = self._run_windowed(max_cycles)
        else:
            last_cycle = self._run_lockstep(max_cycles)
        for module in self._modules:
            if not module.is_done():
                raise SimulationError(
                    f"module {module.name!r} went idle with work outstanding"
                )
        self.cycle = last_cycle
        for channel in self._channels:
            self.stats.merge_channel(channel)
        if self.checker is not None:
            self.checker.on_run_end(last_cycle)
        return last_cycle

    def _run_lockstep(self, max_cycles: int) -> int:
        named = list(self._engines.items())
        for channel in self._channels:
            endpoint = channel.endpoint
            if endpoint is not None:
                channel.bind_wakeup(
                    lambda deliver, _e=endpoint: self.wake(_e, deliver)
                )
        ticks = self.stats.ticks
        last_cycle = self.cycle
        while True:
            best: Optional[Tuple[int, int, ClockedModule]] = None
            best_name = ""
            best_engine: Optional[Engine] = None
            for name, engine in named:
                peeked = engine.peek_next()
                if peeked is not None and (
                    best is None or (peeked[0], peeked[1]) < (best[0], best[1])
                ):
                    best, best_name, best_engine = peeked, name, engine
            if best is None:
                break
            cycle = best[0]
            if cycle > max_cycles:
                raise CycleBudgetExceeded(max_cycles, cycle, best[2].name)
            if cycle > self.cycle:
                # Global cycle boundary: every tick below ``cycle`` on
                # every shard has completed (this is the globally minimal
                # pending event), so the snapshot is consistent.
                if self.fault_injector is not None:
                    self.fault_injector(cycle)
                checker = self.checker
                if checker is not None:
                    checker.on_cycle_start(cycle)
            self.cycle = cycle
            best_engine.tick_once()
            ticks[best_name] = ticks.get(best_name, 0) + 1
            last_cycle = cycle
        return last_cycle

    def _run_windowed(self, max_cycles: int) -> int:
        lookahead = self.lookahead
        named = list(self._engines.items())
        channels_into: Dict[str, List[ShardChannel]] = {n: [] for n, _ in named}
        cross_channels: List[ShardChannel] = []
        for channel in self._channels:
            endpoint = channel.endpoint
            if endpoint is None:
                continue
            shard = self._owner.get(endpoint)
            if shard is None:
                raise SimulationError(
                    f"channel {channel.name!r} endpoint is not registered "
                    f"with this engine"
                )
            if channel.src_shard != "?" and channel.src_shard == shard:
                # Intra-shard channel: sender and endpoint share an engine,
                # so deliveries never cross a window boundary — keep the
                # per-send wake live (unknown senders are treated as
                # cross-shard, which is the conservative direction).
                engine = self._engines[shard]
                channel.bind_wakeup(
                    lambda deliver, _e=endpoint, _g=engine: _g.wake(_e, deliver)
                )
                continue
            if channel.latency < lookahead:
                raise ShardSyncError(
                    f"channel {channel.name!r} has latency {channel.latency} "
                    f"below the lookahead window ({lookahead}); a message "
                    f"could arrive mid-window and break bit-equivalence"
                )
            channel.unbind()
            channels_into[shard].append(channel)
            cross_channels.append(channel)
        last_cycle = self.cycle
        while True:
            boundary: Optional[int] = None
            boundary_name = ""
            for _name, engine in named:
                peeked = engine.peek_next()
                if peeked is not None and (
                    boundary is None or peeked[0] < boundary
                ):
                    boundary, boundary_name = peeked[0], peeked[2].name
            for channel in cross_channels:
                deliver = channel.next_delivery()
                if deliver is not None and (
                    boundary is None or deliver < boundary
                ):
                    boundary = deliver
                    endpoint = channel.endpoint
                    boundary_name = endpoint.name if endpoint else channel.name
            if boundary is None:
                break
            if boundary > max_cycles:
                raise CycleBudgetExceeded(max_cycles, boundary, boundary_name)
            if boundary > self.cycle:
                # The cross-shard synchronization seam: all shards have
                # fully executed every cycle below ``boundary``.
                if self.fault_injector is not None:
                    self.fault_injector(boundary)
                checker = self.checker
                if checker is not None:
                    checker.on_cycle_start(boundary)
            self.cycle = boundary
            window_end = boundary + lookahead
            self.stats.windows += 1
            for name, engine in named:
                # Sync a lagging shard clock to the boundary: nothing can
                # be pending below it, and arming wakes must clamp against
                # the same "now" a serial engine would use.
                if engine.cycle < boundary:
                    engine.cycle = boundary
                for channel in channels_into[name]:
                    deliver = channel.next_delivery()
                    if deliver is not None and deliver < window_end:
                        engine.wake(channel.endpoint, deliver)
                self._running_shard = name
                try:
                    last = engine.run_until(window_end, max_cycles=max_cycles)
                finally:
                    self._running_shard = None
                if last is not None and last > last_cycle:
                    last_cycle = last
        return last_cycle


# ----------------------------------------------------------------------
# multiprocess windowed runner


@dataclass
class ShardBuild:
    """What one worker needs to host its shard.

    ``modules`` lists ``(module, start_cycle, global_rank)`` in global
    registration order; ``channels_in`` are cross-shard channels whose
    endpoint lives on this shard (the endpoint must appear in
    ``modules``); ``channels_out`` are send-side stubs whose queued
    messages the worker drains and ships at each window boundary;
    ``channels_local`` are fully intra-shard channels the worker binds
    straight to its engine.
    """

    modules: List[Tuple[ClockedModule, int, int]] = field(default_factory=list)
    channels_in: Dict[str, ShardChannel] = field(default_factory=dict)
    channels_out: Dict[str, ShardChannel] = field(default_factory=dict)
    channels_local: Dict[str, ShardChannel] = field(default_factory=dict)


@dataclass
class ProcessRunOutcome:
    """Result of a :func:`run_sharded_processes` run."""

    final_cycle: int
    counters: Dict[str, Dict[str, int]]
    windows: int
    messages: int
    shard_cycles: Dict[str, int] = field(default_factory=dict)


#: Exit code a chaos-killed shard worker dies with (mirrors the
#: resilience supervisor's ``CRASH_EXIT_CODE`` so post-mortems read the
#: same either way; duplicated here to keep ``repro.sim`` free of a
#: ``repro.resilience`` import).
SHARD_CRASH_EXIT = 73


def reap_worker(proc, join_timeout: float = 5.0) -> None:
    """Terminate a worker process without ever leaking it.

    ``terminate()`` sends SIGTERM, which a wedged or signal-ignoring
    worker can outlive; if the follow-up ``join`` times out the reap
    escalates to ``kill()`` (SIGKILL, non-ignorable) and re-joins, so
    the caller's ``finally`` block always returns with the process dead.
    """
    if proc is None:
        return
    proc.terminate()
    proc.join(timeout=join_timeout)
    if proc.is_alive():
        proc.kill()
        proc.join(timeout=join_timeout)


def recv_bounded(parent, proc, shard: str, timeout: Optional[float],
                  phase: str):
    """Receive one worker message with death- and deadline-detection.

    A bare ``Connection.recv()`` blocks forever on a hung worker and
    surfaces a dead one as an opaque ``EOFError``.  This polls instead:
    a closed pipe or dead process raises :class:`ShardCrash`, and a
    worker silent past ``timeout`` seconds raises :class:`ShardHang`
    (``timeout=None`` waits indefinitely but still detects death).
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        wait = 0.2
        if deadline is not None:
            wait = max(0.0, min(wait, deadline - time.monotonic()))
        try:
            if parent.poll(wait):
                return parent.recv()
        except (EOFError, OSError):
            raise ShardCrash(
                f"worker pipe closed during {phase}", shard=shard,
            ) from None
        if proc is not None and not proc.is_alive():
            # The worker may have written its reply and exited between
            # polls — drain the pipe once before declaring it dead.
            try:
                if parent.poll(0):
                    return parent.recv()
            except (EOFError, OSError):
                pass
            raise ShardCrash(
                f"worker process died during {phase} "
                f"(exit code {proc.exitcode})",
                shard=shard,
            )
        if deadline is not None and time.monotonic() >= deadline:
            raise ShardHang(
                f"worker silent past its {timeout:.1f}s deadline "
                f"during {phase}",
                shard=shard,
            )


def shard_worker(
    conn,
    builder: Callable[..., ShardBuild],
    builder_args: tuple,
    shard: str,
    allow_jump: bool,
    start_cycle: int,
) -> None:
    """Worker main: host one shard, execute windows on command."""
    try:
        build = builder(*builder_args, shard)
        engine = Engine(allow_jump=allow_jump, start_cycle=start_cycle)
        for module, start, rank in build.modules:
            if isinstance(module, ChannelEndpoint):
                module.attach_engine(engine)
            engine.add(module, start, rank=rank)
        for channel in build.channels_in.values():
            channel.unbind()
        for channel in build.channels_out.values():
            channel.unbind()
        for channel in build.channels_local.values():
            if channel.endpoint is not None:
                channel.bind_wakeup(
                    lambda deliver, _e=channel.endpoint, _g=engine:
                        _g.wake(_e, deliver)
                )
    except Exception as exc:  # ship, don't die silently
        conn.send(("fatal", type(exc).__name__, str(exc)))
        conn.close()
        return

    def next_event() -> Optional[int]:
        peeked = engine.peek_next()
        upcoming = peeked[0] if peeked is not None else None
        for channel in build.channels_in.values():
            deliver = channel.next_delivery()
            if deliver is not None and (upcoming is None or deliver < upcoming):
                upcoming = deliver
        return upcoming

    conn.send(("ready", next_event()))
    try:
        while True:
            message = conn.recv()
            command = message[0]
            if command == "window":
                boundary, window_end, max_cycles, deliveries = message[1:5]
                # A supervised coordinator appends a sixth element: the
                # chaos fault directive for this window (or None).  Its
                # presence also requests a heartbeat, so the supervisor
                # can tell "executing a long window" from "hung".
                supervised = len(message) > 5
                fault = message[5] if supervised else None
                if supervised:
                    conn.send(("heartbeat", boundary))
                if fault is not None:
                    if fault[0] == "kill":
                        conn.close()
                        os._exit(SHARD_CRASH_EXIT)
                    elif fault[0] == "hang":
                        time.sleep(fault[1])
                try:
                    if engine.cycle < boundary:
                        engine.cycle = boundary
                    for name, deliver, seq, payload in deliveries:
                        build.channels_in[name].inject(deliver, seq, payload)
                    for name, channel in build.channels_in.items():
                        deliver = channel.next_delivery()
                        if deliver is not None and deliver < window_end:
                            engine.wake(channel.endpoint, deliver)
                    last = engine.run_until(window_end, max_cycles=max_cycles)
                    outbox = []
                    for name, channel in build.channels_out.items():
                        for deliver, seq, payload in channel.drain():
                            outbox.append((name, deliver, seq, payload))
                    conn.send(("ok", last, next_event(), outbox))
                except CycleBudgetExceeded as exc:
                    conn.send((
                        "budget", exc.budget, exc.cycle, exc.module_name,
                    ))
                except Exception as exc:
                    conn.send(("error", type(exc).__name__, str(exc)))
            elif command == "replay":
                # Recovery path: this is a fresh worker replacing one
                # that died.  Re-inject the shard's entire inbound
                # message history (recorded by the supervisor in its
                # REPROSHCH1 transcript) at the original (deliver, seq)
                # keys and run to the failure boundary — the last
                # window barrier, a globally consistent cut — which
                # reproduces the dead worker's state bit-exactly.
                _, boundary, records, replay_budget = message
                try:
                    for channel in build.channels_in.values():
                        if channel.endpoint is not None:
                            channel.bind_wakeup(
                                lambda deliver, _e=channel.endpoint,
                                _g=engine: _g.wake(_e, deliver)
                            )
                    for name, deliver, seq, payload in records:
                        build.channels_in[name].inject(deliver, seq, payload)
                    engine.run_until(boundary, max_cycles=replay_budget)
                    for channel in build.channels_in.values():
                        channel.unbind()
                    # Everything re-emitted during replay already
                    # crossed the barrier before the crash and lives in
                    # the coordinator's routing state — discard it.
                    for channel in build.channels_out.values():
                        channel.drain()
                    conn.send(("replayed", engine.cycle, next_event()))
                except Exception as exc:
                    conn.send(("error", type(exc).__name__, str(exc)))
            elif command == "finish":
                unfinished = [
                    module.name for module, _s, _r in build.modules
                    if not module.is_done()
                ]
                counters = {}
                for module, _s, _r in build.modules:
                    for walked in module.walk():
                        counters[walked.name] = walked.counters.as_dict()
                conn.send(("done", engine.cycle, counters, unfinished))
                break
            else:  # "stop"
                break
    except (EOFError, OSError):
        pass
    finally:
        conn.close()


def run_sharded_processes(
    builder: Callable[..., ShardBuild],
    builder_args: tuple,
    shards: Sequence[str],
    routes: Dict[str, str],
    *,
    lookahead: int,
    allow_jump: bool = True,
    start_cycle: int = 0,
    max_cycles: int = 1_000_000_000,
    mp_context: Optional[str] = None,
    build_deadline_seconds: Optional[float] = 60.0,
) -> ProcessRunOutcome:
    """Run the windowed protocol with one worker process per shard.

    ``builder(*builder_args, shard_name)`` must be importable (spawn
    contexts pickle it by reference) and return that shard's
    :class:`ShardBuild`; ``routes`` maps each cross-shard channel name
    to the shard that owns its receive side.  Every worker executes the
    same window ``[boundary, boundary + lookahead)`` concurrently;
    messages drained from send stubs are exchanged at the barrier and
    injected with their original ``(deliver, seq)`` keys, so the
    delivery schedule — and therefore every counter — is bit-identical
    to the in-process windowed (and serial) run.

    The build handshake is deadline-bounded: a worker that dies or
    hangs while constructing its :class:`ShardBuild` surfaces a typed
    :class:`~repro.errors.ShardCrash` / :class:`~repro.errors.ShardHang`
    within ``build_deadline_seconds`` instead of blocking the ready
    ``recv()`` forever.  Fault *recovery* is the job of
    :class:`repro.sim.shardfault.ShardSupervisor`, which wraps this
    protocol with per-window heartbeats and transcript replay.
    """
    if lookahead < 1:
        raise SimulationError(f"lookahead must be >= 1 cycle (got {lookahead})")
    unknown = sorted(set(routes.values()) - set(shards))
    if unknown:
        raise SimulationError(
            f"channel routes target unknown shards: {unknown}"
        )
    ctx = multiprocessing.get_context(mp_context)
    workers: Dict[str, Tuple[object, object]] = {}
    in_flight: Dict[str, List[Tuple[str, int, int, object]]] = {
        shard: [] for shard in shards
    }
    next_events: Dict[str, Optional[int]] = {}
    try:
        for shard in shards:
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=shard_worker,
                args=(
                    child, builder, builder_args, shard,
                    allow_jump, start_cycle,
                ),
                daemon=True,
            )
            proc.start()
            child.close()
            workers[shard] = (parent, proc)
        for shard, (parent, proc) in workers.items():
            reply = recv_bounded(
                parent, proc, shard, build_deadline_seconds, "shard build",
            )
            if reply[0] != "ready":
                raise SimulationError(
                    f"shard {shard!r} worker failed to build: "
                    f"{reply[1]}: {reply[2]}"
                )
            next_events[shard] = reply[1]

        windows = 0
        messages = 0
        final_cycle = start_cycle
        while True:
            boundary: Optional[int] = None
            for upcoming in next_events.values():
                if upcoming is not None and (
                    boundary is None or upcoming < boundary
                ):
                    boundary = upcoming
            for pending in in_flight.values():
                for _name, deliver, _seq, _payload in pending:
                    if boundary is None or deliver < boundary:
                        boundary = deliver
            if boundary is None:
                break
            if boundary > max_cycles:
                raise CycleBudgetExceeded(max_cycles, boundary, "<sharded>")
            window_end = boundary + lookahead
            windows += 1
            for shard, (parent, _proc) in workers.items():
                due = [
                    msg for msg in in_flight[shard] if msg[1] < window_end
                ]
                in_flight[shard] = [
                    msg for msg in in_flight[shard] if msg[1] >= window_end
                ]
                parent.send(("window", boundary, window_end, max_cycles, due))
            for shard, (parent, proc) in workers.items():
                reply = recv_bounded(
                    parent, proc, shard, None, "window barrier",
                )
                if reply[0] == "budget":
                    raise CycleBudgetExceeded(reply[1], reply[2], reply[3])
                if reply[0] != "ok":
                    raise SimulationError(
                        f"shard {shard!r} failed mid-window: "
                        f"{reply[1]}: {reply[2]}"
                    )
                _tag, last, upcoming, outbox = reply
                next_events[shard] = upcoming
                if last is not None and last > final_cycle:
                    final_cycle = last
                for name, deliver, seq, payload in outbox:
                    dest = routes.get(name)
                    if dest is None:
                        raise SimulationError(
                            f"shard {shard!r} emitted a message on "
                            f"channel {name!r}, which is missing from "
                            f"the route table (routed channels: "
                            f"{sorted(routes)})"
                        )
                    messages += 1
                    in_flight[dest].append(
                        (name, deliver, seq, payload)
                    )
            # Newly exchanged messages can arm shards that reported no
            # upcoming events; the boundary scan above re-reads in_flight.

        counters: Dict[str, Dict[str, int]] = {}
        shard_cycles: Dict[str, int] = {}
        unfinished: List[str] = []
        for shard, (parent, proc) in workers.items():
            parent.send(("finish",))
            reply = recv_bounded(parent, proc, shard, None, "finalize")
            if reply[0] != "done":
                raise SimulationError(
                    f"shard {shard!r} failed to finalize: {reply!r}"
                )
            _tag, shard_cycle, shard_counters, shard_unfinished = reply
            shard_cycles[shard] = shard_cycle
            counters.update(shard_counters)
            unfinished.extend(shard_unfinished)
        if unfinished:
            raise SimulationError(
                f"module(s) {sorted(unfinished)!r} went idle with work "
                f"outstanding"
            )
        return ProcessRunOutcome(
            final_cycle=final_cycle,
            counters=counters,
            windows=windows,
            messages=messages,
            shard_cycles=shard_cycles,
        )
    finally:
        for _shard, (parent, proc) in workers.items():
            try:
                parent.close()
            except OSError:
                pass
            reap_worker(proc)
