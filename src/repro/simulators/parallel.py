"""Multiprocess parallel simulation (paper §IV-B2).

The paper credits Swift-Sim's modular design with making parallel
simulation easy and reports a further ~5x from running simulations
concurrently (50 threads on a 2-socket server).  Applications are
independent, so the parallel driver fans application traces out to a
process pool — the same throughput-level concurrency, sized to this
machine.  Worker processes rebuild the simulator from its (picklable)
configuration and plan, simulate, and ship back the result without the
metrics report (module trees do not cross process boundaries).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Optional, Sequence, Type

from repro.frontend.config import GPUConfig
from repro.frontend.trace import ApplicationTrace
from repro.sim.plan import ModelingPlan
from repro.simulators.base import PlanSimulator
from repro.simulators.results import SimulationResult


def default_worker_count() -> int:
    """Worker processes to use when the caller does not say."""
    return max(1, min(os.cpu_count() or 1, 50))


def _simulate_one(
    simulator_cls: Type[PlanSimulator],
    config: GPUConfig,
    plan: ModelingPlan,
    hit_rate_source: str,
    app: ApplicationTrace,
) -> SimulationResult:
    simulator = simulator_cls(config, plan=plan, hit_rate_source=hit_rate_source)
    # Metrics hold live module references; skip them for cross-process runs.
    return simulator.simulate(app, gather_metrics=False)


def simulate_apps_parallel(
    simulator: PlanSimulator,
    apps: Sequence[ApplicationTrace],
    workers: Optional[int] = None,
) -> Dict[str, SimulationResult]:
    """Simulate many applications concurrently with ``simulator``'s plan.

    Returns results keyed by application name.  With ``workers=1`` the
    apps run sequentially in-process (useful as the single-thread leg of
    the Figure 5 contribution analysis).
    """
    if workers is None:
        workers = default_worker_count()
    if workers <= 1 or len(apps) <= 1:
        return {
            app.name: _simulate_one(
                type(simulator),
                simulator.config,
                simulator.plan,
                simulator.hit_rate_source,
                app,
            )
            for app in apps
        }
    results: Dict[str, SimulationResult] = {}
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(
                _simulate_one,
                type(simulator),
                simulator.config,
                simulator.plan,
                simulator.hit_rate_source,
                app,
            )
            for app in apps
        ]
        for app, future in zip(apps, futures):
            results[app.name] = future.result()
    return results
