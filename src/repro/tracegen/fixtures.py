"""Degenerate trace fixtures for cross-simulator exactness tests.

These are *not* registered in :data:`repro.tracegen.suites.APPLICATIONS`
— they are not workloads, they are calibration points: kernels so simple
that the closed-form analytic tier and the engine-based hybrid tiers
must agree **exactly**, cycle for cycle.  The differential and property
suites (``tests/test_analytic_differential.py``) pin the analytic model
to the engines on these shapes, so a regression in either side shows up
as a cycle-count mismatch rather than a silently-plausible error drift.

All fixtures are pure functions of their arguments: no RNG, fixed PC
layout, fully-active masks.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.frontend.trace import (
    ApplicationTrace,
    BlockTrace,
    KernelTrace,
    TraceInstruction,
    WarpTrace,
)

#: SASS instruction size for PC layout.
_PC_STEP = 16

#: First general-purpose register the fixtures allocate from.
_FIRST_REG = 8


def _warp(instructions: Sequence[TraceInstruction], warp_id: int = 0) -> WarpTrace:
    instructions = list(instructions)
    next_pc = instructions[-1].pc + _PC_STEP if instructions else 0
    instructions.append(TraceInstruction(next_pc, "EXIT"))
    return WarpTrace(warp_id, instructions)


def _single_warp_app(
    name: str, instructions: Sequence[TraceInstruction]
) -> ApplicationTrace:
    kernel = KernelTrace(f"{name}_kernel", [BlockTrace(0, [_warp(instructions)])])
    return ApplicationTrace(name, [kernel])


def serial_chain_app(length: int, opcode: str = "IADD3") -> ApplicationTrace:
    """One warp, one block: a pure serial dependence chain.

    Every instruction consumes its predecessor's destination, so the
    warp's solo time is fully latency-bound — the tightest possible
    pin on the dependence-chain arithmetic.
    """
    instructions: List[TraceInstruction] = []
    for i in range(length):
        instructions.append(
            TraceInstruction(
                i * _PC_STEP,
                opcode,
                dest_regs=(_FIRST_REG + i + 1,),
                src_regs=(_FIRST_REG + i,),
            )
        )
    return _single_warp_app(f"serial{length}", instructions)


def independent_alu_app(length: int, opcode: str = "IADD3") -> ApplicationTrace:
    """One warp, one block: independent same-unit instructions.

    No register dependences at all, so the warp's solo time is fully
    issue-bound — pinning the dispatch-interval arithmetic.
    """
    instructions = [
        TraceInstruction(
            i * _PC_STEP, opcode, dest_regs=(_FIRST_REG + i,), src_regs=()
        )
        for i in range(length)
    ]
    return _single_warp_app(f"independent{length}", instructions)


def compute_only_app(
    num_blocks: int = 2,
    warps_per_block: int = 2,
    chain_length: int = 8,
    opcode: str = "IADD3",
) -> ApplicationTrace:
    """Multi-warp, multi-block, compute-only kernel (no memory at all).

    Every warp runs the identical serial chain, so the kernel exercises
    occupancy / wave / issue-port math without any memory modeling —
    the shape on which all simulator tiers should agree most closely.
    """
    blocks = []
    for block_id in range(num_blocks):
        warps = []
        for warp_id in range(warps_per_block):
            instructions = [
                TraceInstruction(
                    i * _PC_STEP,
                    opcode,
                    dest_regs=(_FIRST_REG + i + 1,),
                    src_regs=(_FIRST_REG + i,),
                )
                for i in range(chain_length)
            ]
            warps.append(_warp(instructions, warp_id=warp_id))
        blocks.append(BlockTrace(block_id, warps))
    kernel = KernelTrace("compute_only_kernel", blocks)
    return ApplicationTrace(
        f"compute{num_blocks}x{warps_per_block}x{chain_length}", [kernel]
    )


def mixed_unit_app(length_per_unit: int = 4) -> ApplicationTrace:
    """One warp cycling through INT/SP/SFU chains (latency diversity)."""
    instructions: List[TraceInstruction] = []
    pc = 0
    reg = _FIRST_REG
    for opcode in ("IADD3", "FFMA", "MUFU.RCP"):
        for __ in range(length_per_unit):
            instructions.append(
                TraceInstruction(
                    pc, opcode, dest_regs=(reg + 1,), src_regs=(reg,)
                )
            )
            pc += _PC_STEP
            reg += 1
    return _single_warp_app("mixed_units", instructions)


#: The degenerate suite the differential tests sweep.
DEGENERATE_FIXTURES = {
    "serial4": lambda: serial_chain_app(4),
    "serial16": lambda: serial_chain_app(16),
    "independent4": lambda: independent_alu_app(4),
    "independent16": lambda: independent_alu_app(16),
    "mixed_units": mixed_unit_app,
}
