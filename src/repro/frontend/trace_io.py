"""Trace Parser: NVBit-style textual trace format.

The on-disk format is line-oriented, mirroring the structure of traces
produced by the paper's NVBit extension:

.. code-block:: text

    #SWIFTSIM-TRACE v1
    app bfs suite=rodinia
    kernel bfs_kernel grid=16,1,1
    block 0 smem=0 regs=24
    warp 0
    0x0000 IADD3 d=4 s=2,3
    0x0010 LDG d=5 s=4 m=0xffffffff a=0x10000,0x10004,...
    0x0020 EXIT

Blank lines and ``#`` comments are ignored.  Register lists, masks, and
addresses are optional per instruction; addresses are hexadecimal.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import List, Optional, Union

from repro.errors import TraceCorruption, TraceError
from repro.frontend.trace import (
    ApplicationTrace,
    BlockTrace,
    KernelTrace,
    TraceInstruction,
    WarpTrace,
)

_HEADER = "#SWIFTSIM-TRACE v1"


def save_trace(trace: ApplicationTrace, path: Union[str, Path]) -> None:
    """Serialize an application trace to the textual format.

    Paths ending in ``.gz`` are gzip-compressed transparently (real NVBit
    trace archives ship compressed; ours can too).
    """
    lines: List[str] = [_HEADER, f"app {trace.name} suite={trace.suite}"]
    for kernel in trace.kernels:
        gx, gy, gz = kernel.grid_dim
        lines.append(f"kernel {kernel.name} grid={gx},{gy},{gz}")
        for block in kernel.blocks:
            lines.append(
                f"block {block.block_id} smem={block.shared_mem_bytes} "
                f"regs={block.regs_per_thread}"
            )
            for warp in block.warps:
                lines.append(f"warp {warp.warp_id}")
                for inst in warp.instructions:
                    lines.append(_format_instruction(inst))
    text = "\n".join(lines) + "\n"
    path = Path(path)
    if path.suffix == ".gz":
        with gzip.open(path, "wt") as handle:
            handle.write(text)
    else:
        path.write_text(text)


def _format_instruction(inst: TraceInstruction) -> str:
    parts = [f"{inst.pc:#06x}", inst.opcode]
    if inst.dest_regs:
        parts.append("d=" + ",".join(str(r) for r in inst.dest_regs))
    if inst.src_regs:
        parts.append("s=" + ",".join(str(r) for r in inst.src_regs))
    if inst.active_mask != 0xFFFFFFFF:
        parts.append(f"m={inst.active_mask:#x}")
    if inst.addresses:
        parts.append("a=" + ",".join(f"{a:#x}" for a in inst.addresses))
    return " ".join(parts)


class _Parser:
    """Single-pass recursive-descent parser over trace lines.

    With ``skip_corrupt_kernels`` the parser degrades instead of dying:
    a kernel whose body is malformed or truncated is dropped, parsing
    reskews to the next ``kernel`` line, and the skip is recorded in
    ``skipped_kernels``.  Header/app-line corruption and a trace whose
    *every* kernel is corrupt still raise — there is nothing usable to
    degrade to.
    """

    def __init__(self, lines: List[str], source: str,
                 skip_corrupt_kernels: bool = False) -> None:
        self._lines = lines
        self._source = source
        self._index = 0
        self._skip_corrupt = skip_corrupt_kernels
        #: ``(kernel_name_or_?, error_message)`` per dropped kernel.
        self.skipped_kernels: List[tuple] = []

    def _fail(self, message: str) -> None:
        raise TraceCorruption(message, source=self._source,
                              line=self._index)

    def _peek(self) -> Optional[str]:
        while self._index < len(self._lines):
            stripped = self._lines[self._index].strip()
            if stripped and not stripped.startswith("#"):
                return stripped
            self._index += 1
        return None

    def _next(self) -> str:
        line = self._peek()
        if line is None:
            self._fail("unexpected end of trace")
        self._index += 1
        return line  # type: ignore[return-value]

    def parse(self) -> ApplicationTrace:
        first_raw = self._lines[0].strip() if self._lines else ""
        if first_raw != _HEADER:
            self._fail(f"missing header {_HEADER!r}")
        self._index = 1
        app_line = self._next()
        if not app_line.startswith("app "):
            self._fail("expected 'app <name> suite=<suite>'")
        app_fields = app_line.split()
        if len(app_fields) < 2:
            self._fail("app line is missing the application name")
        app_name = app_fields[1]
        suite = ""
        for field in app_fields[2:]:
            if field.startswith("suite="):
                suite = field[len("suite="):]
        kernels: List[KernelTrace] = []
        while self._peek() is not None:
            if self._skip_corrupt:
                mark = self._index
                try:
                    kernels.append(self._parse_kernel())
                except TraceCorruption as exc:
                    self._record_skip(mark, exc)
                    self._skip_to_next_kernel(mark)
            else:
                kernels.append(self._parse_kernel())
        if not kernels:
            if self.skipped_kernels:
                first = self.skipped_kernels[0]
                self._fail(
                    f"every kernel in the trace is corrupt "
                    f"(first: kernel {first[0]!r}: {first[1]})"
                )
            self._fail("trace contains no kernels")
        return ApplicationTrace(app_name, kernels, suite=suite)

    def _record_skip(self, mark: int, exc: TraceCorruption) -> None:
        name = "?"
        if mark < len(self._lines):
            fields = self._lines[mark].split()
            if len(fields) >= 2 and fields[0] == "kernel":
                name = fields[1]
        self.skipped_kernels.append((name, str(exc)))

    def _skip_to_next_kernel(self, mark: int) -> None:
        """Reskew past a corrupt kernel: resume at the next ``kernel``
        line strictly after the one that failed."""
        self._index = mark + 1
        while self._index < len(self._lines):
            if self._lines[self._index].strip().startswith("kernel "):
                return
            self._index += 1

    def _parse_kernel(self) -> KernelTrace:
        line = self._next()
        if not line.startswith("kernel "):
            self._fail(f"expected 'kernel', got {line!r}")
        fields = line.split()
        if len(fields) < 2:
            self._fail("kernel line is missing the kernel name")
        name = fields[1]
        grid_dim = None
        for field in fields[2:]:
            if field.startswith("grid="):
                try:
                    gx, gy, gz = (int(v) for v in field[len("grid="):].split(","))
                except ValueError:
                    self._fail(f"malformed grid spec {field!r}")
                grid_dim = (gx, gy, gz)
        blocks: List[BlockTrace] = []
        while True:
            nxt = self._peek()
            if nxt is None or not nxt.startswith("block "):
                break
            blocks.append(self._parse_block())
        if not blocks:
            self._fail(f"kernel {name!r} has no blocks")
        return KernelTrace(name, blocks, grid_dim=grid_dim)

    def _parse_block(self) -> BlockTrace:
        line = self._next()
        fields = line.split()
        try:
            block_id = int(fields[1])
        except (IndexError, ValueError):
            self._fail(f"malformed block line {line!r}")
        shared_mem = 0
        regs = 32
        for field in fields[2:]:
            try:
                if field.startswith("smem="):
                    shared_mem = int(field[len("smem="):])
                elif field.startswith("regs="):
                    regs = int(field[len("regs="):])
            except ValueError:
                self._fail(f"malformed block field {field!r}")
        warps: List[WarpTrace] = []
        while True:
            nxt = self._peek()
            if nxt is None or not nxt.startswith("warp "):
                break
            warps.append(self._parse_warp())
        if not warps:
            self._fail(f"block {block_id} has no warps")
        return BlockTrace(block_id, warps, shared_mem_bytes=shared_mem, regs_per_thread=regs)

    def _parse_warp(self) -> WarpTrace:
        line = self._next()
        try:
            warp_id = int(line.split()[1])
        except (IndexError, ValueError):
            self._fail(f"malformed warp line {line!r}")
        instructions: List[TraceInstruction] = []
        while True:
            nxt = self._peek()
            if nxt is None or nxt.startswith(("warp ", "block ", "kernel ")):
                break
            instructions.append(self._parse_instruction(self._next()))
        if not instructions:
            self._fail(f"warp {warp_id} has no instructions")
        return WarpTrace(warp_id, instructions)

    def _parse_instruction(self, line: str) -> TraceInstruction:
        fields = line.split()
        if len(fields) < 2:
            self._fail(f"malformed instruction line {line!r}")
        try:
            pc = int(fields[0], 16)
        except ValueError:
            self._fail(f"malformed PC {fields[0]!r}")
        opcode = fields[1]
        dest_regs: List[int] = []
        src_regs: List[int] = []
        mask = 0xFFFFFFFF
        addresses: List[int] = []
        for field in fields[2:]:
            try:
                if field.startswith("d="):
                    dest_regs = [int(v) for v in field[2:].split(",")]
                elif field.startswith("s="):
                    src_regs = [int(v) for v in field[2:].split(",")]
                elif field.startswith("m="):
                    mask = int(field[2:], 16)
                elif field.startswith("a="):
                    addresses = [int(v, 16) for v in field[2:].split(",")]
                else:
                    self._fail(f"unknown instruction field {field!r}")
            except ValueError:
                self._fail(f"malformed field {field!r}")
        try:
            return TraceInstruction(
                pc=pc,
                opcode=opcode,
                dest_regs=dest_regs,
                src_regs=src_regs,
                active_mask=mask,
                addresses=addresses,
            )
        except TraceError as exc:
            self._fail(str(exc))
        raise AssertionError("unreachable")


def load_trace(path: Union[str, Path],
               skip_corrupt_kernels: bool = False) -> ApplicationTrace:
    """Parse a (possibly gzipped) trace file into an :class:`ApplicationTrace`.

    ``skip_corrupt_kernels`` degrades instead of failing: kernels with
    malformed or truncated bodies are dropped (the CLI's
    ``--skip-corrupt-kernels``), raising only when no kernel survives.
    """
    path = Path(path)
    try:
        if path.suffix == ".gz":
            with gzip.open(path, "rt") as handle:
                text = handle.read()
        else:
            text = path.read_text()
    except FileNotFoundError:
        raise TraceError(f"trace file not found: {path}") from None
    except (OSError, UnicodeDecodeError) as exc:
        raise TraceError(f"cannot read trace file {path}: {exc}") from exc
    return parse_trace(text, source=str(path),
                       skip_corrupt_kernels=skip_corrupt_kernels)


def parse_trace(text: str, source: str = "<string>",
                skip_corrupt_kernels: bool = False) -> ApplicationTrace:
    """Parse trace text (see module docstring for the format)."""
    return _Parser(text.splitlines(), source,
                   skip_corrupt_kernels=skip_corrupt_kernels).parse()
