"""Resilience verification: fault-injected and resumed sweeps converge.

Two contracts tie :mod:`repro.resilience` to the determinism pillar
(see ``docs/verification.md`` and ``docs/resilience.md``):

* **chaos convergence** — a sweep run under a seeded
  :class:`~repro.resilience.chaos.ChaosPlan` (worker crashes, hangs,
  corrupted results) must finish with *bit-identical*
  :class:`~repro.simulators.results.SimulationResult`\\ s to a clean
  run: retries re-execute deterministic simulations, so injected faults
  may cost attempts but never change answers;
* **journal resume** — a sweep interrupted mid-journal and resumed via
  :class:`~repro.resilience.journal.RunJournal` must produce the same
  final results as an uninterrupted run.
"""

from __future__ import annotations

import os
import tempfile
from typing import List, Optional, Sequence, Type

from repro.frontend.config import GPUConfig
from repro.resilience.chaos import ChaosPlan
from repro.resilience.journal import RunJournal
from repro.resilience.policy import RetryPolicy
from repro.simulators.base import PlanSimulator
from repro.simulators.parallel import (
    simulate_apps_parallel,
    simulate_apps_supervised,
)
from repro.simulators.results import SimulationResult
from repro.tracegen.suites import make_app
from repro.check.report import CheckFinding, info, violation

_CHECK = "resilience"

#: The acceptance-bar injection mix: 30% crashes, 10% hangs.
DEFAULT_CHAOS = ChaosPlan(seed=2025, crash_rate=0.30, hang_rate=0.10,
                          corrupt_rate=0.05, hang_seconds=60.0)

#: Generous retry budget — convergence is the contract under test, so
#: the policy should not be the reason a chaos run fails.
CHAOS_POLICY = RetryPolicy(max_attempts=10, base_delay=0.001,
                           backoff_factor=2.0, max_delay=0.05,
                           jitter=0.1, timeout_seconds=30.0)


def results_identical(lhs: SimulationResult, rhs: SimulationResult) -> bool:
    return (
        lhs.total_cycles == rhs.total_cycles
        and [(k.name, k.start_cycle, k.end_cycle, k.instructions)
             for k in lhs.kernels]
        == [(k.name, k.start_cycle, k.end_cycle, k.instructions)
            for k in rhs.kernels]
    )


def _check_chaos_convergence(
    simulator_cls: Type[PlanSimulator],
    config: GPUConfig,
    app_names: Sequence[str],
    scale: str,
    chaos: ChaosPlan,
    workers: int,
) -> List[CheckFinding]:
    findings: List[CheckFinding] = []
    apps = [make_app(name, scale=scale) for name in app_names]
    clean = simulate_apps_parallel(simulator_cls(config), apps, workers=1)
    outcomes = simulate_apps_supervised(
        simulator_cls(config), apps, workers=workers,
        retry_policy=CHAOS_POLICY, chaos=chaos,
    )
    injected = sum(
        1 for outcome in outcomes.values() for record in outcome.attempts
        if record.outcome != "ok"
    )
    simulator_name = simulator_cls(config).name
    for app in apps:
        outcome = outcomes[app.name]
        subject = f"{simulator_name} x {app.name}"
        if not outcome.ok:
            findings.append(violation(
                _CHECK, subject,
                f"chaos run did not converge after "
                f"{outcome.num_attempts} attempt(s): {outcome.failure}",
            ))
        elif not results_identical(outcome.result, clean[app.name]):
            findings.append(violation(
                _CHECK, subject,
                f"chaos run diverged from clean run: "
                f"{outcome.result.total_cycles} vs "
                f"{clean[app.name].total_cycles} cycles",
            ))
    if not findings:
        findings.append(info(
            _CHECK, simulator_name,
            f"chaos sweep (crash {chaos.crash_rate:.0%}, hang "
            f"{chaos.hang_rate:.0%}, corrupt {chaos.corrupt_rate:.0%}, "
            f"seed {chaos.seed}) survived {injected} injected fault(s) "
            f"and matched the clean run bit-identically over "
            f"{len(apps)} app(s)",
        ))
    return findings


def _check_journal_resume(
    simulator_cls: Type[PlanSimulator],
    config: GPUConfig,
    app_names: Sequence[str],
    scale: str,
) -> List[CheckFinding]:
    findings: List[CheckFinding] = []
    apps = [make_app(name, scale=scale) for name in app_names]
    simulator_name = simulator_cls(config).name
    clean = simulate_apps_parallel(simulator_cls(config), apps, workers=1)
    fd, path = tempfile.mkstemp(suffix=".journal")
    os.close(fd)
    os.unlink(path)
    try:
        # First leg: complete only a prefix, as an interrupted sweep would.
        with RunJournal.create(path, gpu_name=config.name, scale=scale) as journal:
            simulate_apps_parallel(
                simulator_cls(config), apps[: max(1, len(apps) // 2)],
                workers=1, journal=journal,
            )
            first_leg = len(journal)
        # Resume: reload the journal, sweep the full list.
        with RunJournal.load(path) as journal:
            if len(journal) != first_leg:
                findings.append(violation(
                    _CHECK, simulator_name,
                    f"journal reload lost entries: wrote {first_leg}, "
                    f"read {len(journal)}",
                ))
            resumed = simulate_apps_parallel(
                simulator_cls(config), apps, workers=1, journal=journal,
            )
        for app in apps:
            if not results_identical(resumed[app.name], clean[app.name]):
                findings.append(violation(
                    _CHECK, f"{simulator_name} x {app.name}",
                    f"resumed sweep diverged from clean run: "
                    f"{resumed[app.name].total_cycles} vs "
                    f"{clean[app.name].total_cycles} cycles",
                ))
    finally:
        if os.path.exists(path):
            os.unlink(path)
    if not findings:
        findings.append(info(
            _CHECK, simulator_name,
            f"interrupted sweep ({first_leg} journaled, "
            f"{len(apps) - first_leg} resumed) matched the clean run "
            f"bit-identically",
        ))
    return findings


def resilience_check(
    config: GPUConfig,
    app_names: Sequence[str],
    scale: str = "tiny",
    simulator_classes: Optional[Sequence[Type[PlanSimulator]]] = None,
    chaos: Optional[ChaosPlan] = None,
    workers: Optional[int] = None,
) -> List[CheckFinding]:
    """Run both resilience contracts over ``app_names``.

    ``workers`` defaults to 1 (in-process supervision: injected faults
    become exceptions, which keeps the check fast and start-method
    agnostic).  Pass >= 2 to exercise real worker processes, reaping
    included — that is what ``repro chaos`` does.
    """
    if simulator_classes is None:
        from repro.simulators.swift_basic import SwiftSimBasic

        simulator_classes = [SwiftSimBasic]
    if chaos is None:
        chaos = DEFAULT_CHAOS
    findings: List[CheckFinding] = []
    for simulator_cls in simulator_classes:
        findings.extend(_check_chaos_convergence(
            simulator_cls, config, app_names, scale, chaos,
            workers=workers if workers is not None else 1,
        ))
        findings.extend(_check_journal_resume(
            simulator_cls, config, app_names, scale,
        ))
    return findings
