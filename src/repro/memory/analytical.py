"""Analytical memory-access model (paper §III-D2, Equation 1).

The expected latency of the Load/Store instructions at one PC is

    L_inst = L_L1 * R_L1  +  L_L2 * R_L2  +  L_DRAM * R_DRAM

where the R terms are per-PC hit fractions obtained from a profiling
pre-pass — either the reuse-distance tool
(:class:`~repro.memory.reuse_distance.ReuseDistanceProfiler`) or a
one-shot functional run of the real sectored caches.  The timing pass
then never touches the cache model: each memory instruction costs one
table lookup plus two contention reservations (the SM's LD/ST port and
the aggregate DRAM bandwidth), which is what buys Swift-Sim-Memory its
extra speedup over Swift-Sim-Basic.
"""

from __future__ import annotations

from weakref import WeakKeyDictionary
from typing import Dict, List, Tuple

from repro.frontend.config import GPUConfig
from repro.frontend.isa import InstKind, MemSpace
from repro.frontend.trace import KernelTrace, TraceInstruction
from repro.memory.access import coalesce
from repro.memory.cache import AccessStatus, SectoredCache
from repro.memory.l2 import build_l2_slices, partition_for_line, slice_line_addr
from repro.memory.reuse_distance import PCProfile, ReuseDistanceProfiler
from repro.sim.module import ModelLevel, Module
from repro.utils.bitops import ceil_div
from repro.utils.fastpath import get_fastpaths

#: Memoized :meth:`MemoryProfile.for_application` results, keyed weakly
#: on the application trace.  Profiling is a deterministic pure function
#: of ``(config, kernels, source)`` and the resulting profiles are
#: immutable after construction, so re-running it for the same app —
#: which differential/shadow verification and benchmark sweeps do
#: constantly — is pure waste.  Values hold ``(config, source,
#: profiles)`` triples; configs are compared by identity.
_PROFILE_MEMO: "WeakKeyDictionary" = WeakKeyDictionary()


class MemoryProfile:
    """Per-PC expected latencies and transaction counts for one kernel."""

    def __init__(self, config: GPUConfig, per_pc: Dict[int, PCProfile]) -> None:
        self.config = config
        self.per_pc = per_pc
        noc_round_trip = 2 * config.noc.latency
        self.latency_l1 = config.l1.latency
        self.latency_l2 = config.l1.latency + noc_round_trip + config.l2.latency
        dram_burst = ceil_div(config.l2.sector_bytes, config.dram.bytes_per_cycle)
        self.latency_dram = self.latency_l2 + config.dram.latency + dram_burst
        self._expected: Dict[int, Tuple[int, float, float]] = {}
        for pc, stats in per_pc.items():
            latency = (
                self.latency_l1 * stats.r_l1
                + self.latency_l2 * stats.r_l2
                + self.latency_dram * stats.r_dram
            )
            self._expected[pc] = (
                max(1, round(latency)),
                stats.avg_transactions,
                stats.r_dram,
            )

    def expected(self, pc: int) -> Tuple[int, float, float]:
        """Return ``(L_inst, avg_transactions, r_dram)`` for ``pc``.

        A PC absent from the profile (possible only if the timing trace
        diverges from the profiled trace) is treated as DRAM-bound.
        """
        entry = self._expected.get(pc)
        if entry is None:
            return self.latency_dram, 1.0, 1.0
        return entry

    @staticmethod
    def from_reuse_distance(config: GPUConfig, kernel: KernelTrace) -> "MemoryProfile":
        """Profile one kernel with the reuse-distance tool (LRU-only)."""
        return MemoryProfile(config, ReuseDistanceProfiler(config).profile(kernel))

    @staticmethod
    def from_cache_simulation(config: GPUConfig, kernel: KernelTrace) -> "MemoryProfile":
        """Profile one kernel with a functional pass of the real caches."""
        return MemoryProfile(config, CacheSimProfiler(config).profile(kernel))

    @staticmethod
    def for_application(
        config: GPUConfig, kernels, source: str = "cache_sim", memo_key=None
    ) -> "List[MemoryProfile]":
        """Per-kernel profiles with cache/stack state carried *across*
        kernels, matching the simulated caches' cross-kernel warmth.

        ``memo_key`` (an :class:`~repro.frontend.trace.ApplicationTrace`
        owning exactly ``kernels``) opts the call into the
        ``cache_memo`` fast path: repeated profiling of the same app
        with the same config and source returns the cached profiles.
        """
        memoize = memo_key is not None and get_fastpaths().cache_memo
        if memoize:
            for entry_config, entry_source, profiles in _PROFILE_MEMO.get(
                memo_key, ()
            ):
                if entry_config is config and entry_source == source:
                    return profiles
        if source == "reuse_distance":
            profiler = ReuseDistanceProfiler(config)
            tallies = profiler.profile_many(kernels)
        else:
            cache_profiler = CacheSimProfiler(config)
            tallies = [cache_profiler.profile(kernel) for kernel in kernels]
        profiles = [MemoryProfile(config, per_pc) for per_pc in tallies]
        if memoize:
            _PROFILE_MEMO.setdefault(memo_key, []).append(
                (config, source, profiles)
            )
        return profiles


class CacheSimProfiler:
    """Functional cache-simulation profiler.

    Honors sectors, allocation policy, and the configured replacement
    policy — the profiling option the paper prefers for non-LRU design
    points.  Cache state persists across :meth:`profile` calls so a
    kernel sequence sees realistic warmth.
    """

    def __init__(self, config: GPUConfig) -> None:
        self.config = config
        self._l1s: List[SectoredCache] = []
        self._l2s = build_l2_slices(config)

    def profile(self, kernel: KernelTrace) -> Dict[int, PCProfile]:
        config = self.config
        wanted = min(config.num_sms, len(kernel.blocks))
        while len(self._l1s) < wanted:
            index = len(self._l1s)
            self._l1s.append(
                SectoredCache(config.l1, name=f"prof_l1_{index}", seed=index)
            )
        l1s = self._l1s
        l2s = self._l2s
        per_pc: Dict[int, PCProfile] = {}
        line_bytes = config.l1.line_bytes
        sector_bytes = config.l1.sector_bytes
        partitions = config.memory_partitions
        num_l1s = max(1, wanted)
        for block in kernel.blocks:
            l1 = l1s[block.block_id % num_l1s]
            for warp in block.warps:
                for inst in warp.instructions:
                    if not inst.is_memory or inst.mem_space is MemSpace.SHARED:
                        continue
                    profile = per_pc.get(inst.pc)
                    if profile is None:
                        profile = per_pc[inst.pc] = PCProfile()
                    transactions = coalesce(inst.addresses, line_bytes, sector_bytes)
                    profile.instructions += 1
                    profile.transactions += len(transactions)
                    is_store = inst.kind is not InstKind.LOAD
                    worst = 0
                    for transaction in transactions:
                        profile.accesses += 1
                        line = transaction.line_addr
                        result = l1.access_functional(line, transaction.sector, is_store)
                        if not is_store and result.status is AccessStatus.HIT:
                            profile.l1_hits += 1
                            continue
                        partition = partition_for_line(line, partitions)
                        slice_line = slice_line_addr(line, partitions)
                        l2_result = l2s[partition].access_functional(
                            slice_line, transaction.sector, is_store
                        )
                        if l2_result.status is AccessStatus.HIT or is_store:
                            profile.l2_hits += 1
                            if worst < 1:
                                worst = 1
                        else:
                            profile.dram_accesses += 1
                            worst = 2
                    profile.note_instruction_level(worst)
        return per_pc


class AnalyticalMemoryModel(Module):
    """Timing-side model consuming a :class:`MemoryProfile` (Eq. 1 + contention).

    Contention on top of ``L_inst`` (paper: "we add the additional latency
    due to resource contention"):

    * the SM's LD/ST port is occupied ``ceil(tx / throughput)`` cycles per
      instruction (cycle-accurate reservation, like the hybrid ALU model);
    * aggregate DRAM bandwidth is a fluid server — the expected DRAM
      sectors of each instruction advance a virtual clock, and the queue
      excess is charged back in proportion to the instruction's DRAM
      fraction.
    """

    component = "memory"
    level = ModelLevel.ANALYTICAL

    def __init__(self, config: GPUConfig, profile: MemoryProfile, name: str = "memory") -> None:
        super().__init__(name)
        self.config = config
        self.profile = profile
        self._port_free = [0] * config.num_sms
        self._dram_virtual = 0.0
        # Aggregate DRAM drain rate in sectors per cycle.
        self._dram_rate = (
            config.memory_partitions * config.dram.bytes_per_cycle
        ) / config.l2.sector_bytes
        self._throughput = config.sm.ldst_throughput

    def reset(self) -> None:
        super().reset()
        self._port_free = [0] * self.config.num_sms
        self._dram_virtual = 0.0

    def access_global(  # repro: port
        self, sm_id: int, inst: TraceInstruction, cycle: int
    ) -> Tuple[int, int]:
        """Resolve one memory instruction; returns (completion, transactions)."""
        latency, avg_tx, r_dram = self.profile.expected(inst.pc)
        transactions = max(1, round(avg_tx))
        start = self._port_free[sm_id]
        if start < cycle:
            start = cycle
        else:
            self.counters.add("port_stall_cycles", start - cycle)
        occupancy = ceil_div(transactions, self._throughput)
        self._port_free[sm_id] = start + occupancy
        extra = 0
        dram_sectors = transactions * r_dram
        if dram_sectors > 0.0:
            service = dram_sectors / self._dram_rate
            virtual = self._dram_virtual
            if virtual < start:
                virtual = float(start)
            queue_wait = virtual - start
            self._dram_virtual = virtual + service
            extra = int(queue_wait * r_dram)
            if extra:
                self.counters.add("dram_queue_cycles", extra)
        self.counters.add("global_instructions")
        self.counters.add("sector_transactions", transactions)
        if inst.kind is InstKind.STORE:
            # Write-through stores retire once handed to the LD/ST port.
            return start + occupancy, transactions
        # A load completes when its *last* transaction returns: the sectors
        # drain through the LD/ST port at `throughput` per cycle, so the
        # serialization tail adds to the expected latency.
        return start + occupancy - 1 + latency + extra, transactions
