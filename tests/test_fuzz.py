"""Robustness fuzzing: malformed inputs must raise typed errors, never
crash with arbitrary exceptions."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SwiftSimError, TraceError
from repro.frontend.trace_io import parse_trace, save_trace
from repro.frontend.config_io import gpu_config_from_dict, gpu_config_to_dict
from repro.errors import ConfigError
from repro.tracegen.suites import make_app

from conftest import make_tiny_gpu


def _valid_trace_text() -> str:
    import io, tempfile, pathlib
    app = make_app("gemm", scale="tiny")
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "t.trace"
        save_trace(app, path)
        return path.read_text()


_BASE_TEXT = _valid_trace_text()
_LINES = _BASE_TEXT.splitlines()


class TestTraceParserFuzz:
    @given(st.integers(0, len(_LINES) - 1))
    @settings(max_examples=60, deadline=None)
    def test_deleting_any_line_is_typed(self, index):
        mutated = "\n".join(_LINES[:index] + _LINES[index + 1:])
        try:
            parse_trace(mutated)
        except TraceError:
            pass  # rejection with the documented error type is correct

    @given(
        st.integers(0, len(_LINES) - 1),
        st.text(alphabet="abcxyz0= ,", min_size=1, max_size=12),
    )
    @settings(max_examples=80, deadline=None)
    def test_corrupting_any_line_is_typed(self, index, junk):
        mutated_lines = list(_LINES)
        mutated_lines[index] = mutated_lines[index] + " " + junk
        try:
            parse_trace("\n".join(mutated_lines))
        except TraceError:
            pass

    @given(st.text(max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_text_is_typed(self, text):
        try:
            parse_trace(text)
        except TraceError:
            pass


class TestConfigFuzz:
    @given(st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_corrupting_config_values_is_typed(self, rng):
        data = gpu_config_to_dict(make_tiny_gpu())
        # Corrupt a handful of random scalar leaves.
        def corrupt(node):
            keys = [k for k, v in node.items() if isinstance(v, (int, float))]
            if keys:
                key = rng.choice(keys)
                node[key] = rng.choice([-1, 0, 10**9, 3.7])
        corrupt(data)
        corrupt(data.get("l1", {}))
        corrupt(data.get("dram", {}))
        try:
            gpu_config_from_dict(data)
        except ConfigError:
            pass

    def test_all_package_errors_share_base(self):
        from repro import errors
        for name in ("ConfigError", "TraceError", "PlanError",
                     "SimulationError", "WorkloadError"):
            assert issubclass(getattr(errors, name), SwiftSimError)
