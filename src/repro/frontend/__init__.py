"""Swift-Sim Frontend: Hardware Configuration Collector and Trace Parser.

The Frontend is part (1) of the framework in the paper's Figure 2.  It
turns configuration files into a validated :class:`~repro.frontend.config.GPUConfig`
tree and NVBit-style application traces into in-memory
:class:`~repro.frontend.trace.ApplicationTrace` objects that the
performance model consumes.
"""

from repro.frontend.config import (
    CacheConfig,
    DRAMConfig,
    ExecUnitConfig,
    GPUConfig,
    NoCConfig,
    SMConfig,
)
from repro.frontend.config_io import load_gpu_config, save_gpu_config
from repro.frontend.isa import (
    OPCODES,
    InstKind,
    MemSpace,
    OpcodeInfo,
    UnitClass,
    opcode_info,
)
from repro.frontend.nvbit_compat import export_nvbit, load_nvbit, parse_nvbit
from repro.frontend.presets import GPU_PRESETS, get_preset
from repro.frontend.trace import (
    ApplicationTrace,
    BlockTrace,
    KernelTrace,
    TraceInstruction,
    WarpTrace,
)
from repro.frontend.trace_io import load_trace, save_trace

__all__ = [
    "ApplicationTrace",
    "BlockTrace",
    "CacheConfig",
    "DRAMConfig",
    "ExecUnitConfig",
    "GPUConfig",
    "GPU_PRESETS",
    "InstKind",
    "KernelTrace",
    "MemSpace",
    "NoCConfig",
    "OPCODES",
    "OpcodeInfo",
    "SMConfig",
    "TraceInstruction",
    "UnitClass",
    "WarpTrace",
    "export_nvbit",
    "get_preset",
    "load_nvbit",
    "parse_nvbit",
    "load_gpu_config",
    "load_trace",
    "opcode_info",
    "save_gpu_config",
    "save_trace",
]
