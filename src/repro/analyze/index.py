"""Parsed-source index: files, the cross-file class hierarchy, and caching.

The analyzer is whole-program: interface-conformance needs to know that
``DetailedMemorySystem`` is (transitively) a :class:`repro.sim.module.Module`
even though the two classes live in different files, and the wiring pass
needs every instantiation site of every sink class.  :class:`ProgramIndex`
builds that view once from a set of :class:`SourceFile`\\ s; rules then
query it.

Parsing dominates lint wall time on large trees, so the parsed-AST index
can be persisted (:class:`AstCache`): entries are keyed by content hash
and analyzer version, letting CI share one parse between the ``repro
lint`` and ``repro check --mode static`` steps.
"""

from __future__ import annotations

import ast
import hashlib
import io
import pickle
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import AnalysisError

#: Bump when parsing/extraction changes, to invalidate persisted caches.
ANALYZER_VERSION = 2

#: Framework root classes: subclassing one of these (by name, transitively
#: through the index) makes a class part of the modeled-module hierarchy.
MODULE_ROOTS = frozenset({"Module", "ClockedModule"})
CLOCKED_ROOTS = frozenset({"ClockedModule"})
SINK_ROOTS = frozenset({"InstructionSink", "CompletionListener", "BlockSource"})

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")
_PAYLOAD_RE = re.compile(r"#\s*repro:\s*sweep-payload")
_PORT_RE = re.compile(r"#\s*repro:\s*port\b")

#: Statement kinds whose noqa coverage is their *header* only (covering
#: the whole body would let one comment waive a hundred lines).
_COMPOUND_STMTS = tuple(
    getattr(ast, name)
    for name in ("If", "For", "AsyncFor", "While", "With", "AsyncWith",
                 "Try", "TryStar", "FunctionDef", "AsyncFunctionDef",
                 "ClassDef", "Match")
    if hasattr(ast, name)
)


@dataclass
class ClassInfo:
    """One class definition, with what rules need pre-extracted."""

    name: str
    qualname: str              #: "<module>.<Class>" (dotted module path)
    path: str                  #: repo-relative source path
    node: ast.ClassDef
    base_names: List[str]      #: last-segment names of the bases as written
    source: "SourceFile"
    #: method name -> FunctionDef/AsyncFunctionDef defined in this body
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: names assigned at class level (class attributes)
    class_attrs: Set[str] = field(default_factory=set)
    #: names assigned as ``self.<name> = ...`` anywhere in the body
    self_attrs: Set[str] = field(default_factory=set)
    #: whether any method carries @abstractmethod
    is_abstract: bool = False
    #: methods carrying a ``# repro: port`` marker (on the def/decorator
    #: header or the line immediately above it) — declared cross-module
    #: communication points the sharding rules treat as synchronized
    port_methods: Set[str] = field(default_factory=set)


class SourceFile:
    """One parsed Python source file plus its lint annotations."""

    def __init__(self, path: Path, root: Path, text: str,
                 tree: Optional[ast.Module] = None) -> None:
        self.abspath = path
        try:
            self.path = str(path.relative_to(root))
        except ValueError:
            self.path = str(path)
        self.text = text
        self.content_hash = hashlib.sha1(text.encode("utf-8")).hexdigest()
        try:
            self.tree = tree if tree is not None else ast.parse(text, filename=self.path)
        except SyntaxError as exc:
            raise AnalysisError(f"cannot parse {self.path}: {exc}") from exc
        self.module_name = _module_name(path)
        #: line -> None (suppress all rules) or frozenset of rule IDs
        self.noqa: Dict[int, Optional[FrozenSet[str]]] = {}
        #: lines carrying a ``# repro: sweep-payload`` marker
        self.payload_lines: Set[int] = set()
        #: lines carrying a ``# repro: port`` marker
        self.port_lines: Set[int] = set()
        # Markers are honored only in *actual comments* (tokenize), never
        # inside string literals — otherwise documentation that merely
        # mentions the noqa/port syntax would suppress (or, with
        # unknown-rule validation, reject) findings on its own line.
        for lineno, comment in _comment_lines(text):
            match = _NOQA_RE.search(comment)
            if match:
                ids = match.group(1)
                self.noqa[lineno] = (
                    frozenset(i.strip() for i in ids.split(",") if i.strip())
                    if ids else None
                )
            if _PAYLOAD_RE.search(comment):
                self.payload_lines.add(lineno)
            if _PORT_RE.search(comment):
                self.port_lines.add(lineno)
        #: noqa coverage widened to the enclosing statement: a suppression
        #: on any physical line of a multi-line statement (or on a
        #: decorator / def header) covers findings reported anywhere in
        #: that statement's span.  Compound statements cover their header
        #: only, never their body.
        self._noqa_ranges: List[Tuple[int, int, Optional[FrozenSet[str]]]] = []
        if self.noqa:
            spans = _statement_spans(self.tree)
            for lineno, rules in self.noqa.items():
                best: Optional[Tuple[int, int]] = None
                for start, end in spans:
                    if start <= lineno <= end:
                        if best is None or end - start < best[1] - best[0]:
                            best = (start, end)
                if best is not None:
                    self._noqa_ranges.append((best[0], best[1], rules))
        #: local names bound to imported *modules* (``import os`` -> "os")
        self.imported_modules: Set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imported_modules.add(
                        alias.asname or alias.name.split(".")[0]
                    )

    def suppressed(self, line: int, rule_id: str) -> bool:
        """True when a ``# repro: noqa`` covers ``rule_id`` at ``line`` —
        either written on that exact line, or anywhere within the same
        (simple) statement / compound-statement header."""
        rules = self.noqa.get(line, False)
        if rules is not False and (rules is None or rule_id in rules):
            return True
        for start, end, rules in self._noqa_ranges:
            if start <= line <= end and (rules is None or rule_id in rules):
                return True
        return False


def _comment_lines(text: str) -> List[Tuple[int, str]]:
    """(lineno, comment_text) for every comment token in ``text``.

    Falls back to a whole-line scan if tokenization fails (the file
    already parsed, so this is a defensive path, not an expected one).
    """
    try:
        return [
            (token.start[0], token.string)
            for token in tokenize.generate_tokens(io.StringIO(text).readline)
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return list(enumerate(text.splitlines(), start=1))


def _statement_spans(tree: ast.Module) -> List[Tuple[int, int]]:
    """(start, end) line spans noqa comments extend over.

    Simple statements span all their physical lines (decorator lines
    included, via the enclosing def).  Compound statements span only
    their header — first decorator line through the line before the
    first body statement — so one comment cannot waive a whole block.
    """
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        end = getattr(node, "end_lineno", None) or node.lineno
        if isinstance(node, _COMPOUND_STMTS):
            decorators = getattr(node, "decorator_list", [])
            if decorators:
                start = min([d.lineno for d in decorators] + [start])
            body = getattr(node, "body", [])
            if body:
                end = max(start, body[0].lineno - 1)
        spans.append((start, end))
    return spans


def _module_name(path: Path) -> str:
    """Best-effort dotted module name from a file path."""
    parts = list(path.with_suffix("").parts)
    for anchor in ("src", "site-packages"):
        if anchor in parts:
            parts = parts[parts.index(anchor) + 1:]
            break
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts[-4:]) if parts else str(path)


def _base_name(node: ast.expr) -> Optional[str]:
    """Last-segment name of a base-class expression, if resolvable."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def called_name(func: ast.expr) -> Optional[str]:
    """Name a :class:`ast.Call`'s callee resolves to, last segment."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _extract_class(info: ClassInfo) -> None:
    """Populate methods/attrs/abstractness for one class body."""
    for stmt in info.node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[stmt.name] = stmt
            for decorator in stmt.decorator_list:
                name = _base_name(decorator) or called_name(
                    decorator.func if isinstance(decorator, ast.Call) else decorator
                )
                if name in ("abstractmethod", "abstractproperty"):
                    info.is_abstract = True
            header_start = min(
                [d.lineno for d in stmt.decorator_list] + [stmt.lineno]
            )
            header_end = stmt.body[0].lineno - 1 if stmt.body else stmt.lineno
            marker_window = set(range(header_start - 1, header_end + 1))
            if marker_window & info.source.port_lines:
                info.port_methods.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    info.class_attrs.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            info.class_attrs.add(stmt.target.id)
    for node in ast.walk(info.node):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    info.self_attrs.add(target.attr)


class ProgramIndex:
    """Whole-program view the rules run against."""

    def __init__(self, files: Sequence[SourceFile]) -> None:
        self.files = list(files)
        #: memoized derived analyses (call graph, state flow, partition)
        #: keyed by analysis name — they are pure functions of the index,
        #: so rules sharing one index share one computation
        self.analysis_cache: Dict[str, object] = {}
        #: bare class name -> definitions (collisions keep all)
        self.classes: Dict[str, List[ClassInfo]] = {}
        #: class names instantiated anywhere (Call to the bare name)
        self.instantiated: Set[str] = set()
        for source in self.files:
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef):
                    info = ClassInfo(
                        name=node.name,
                        qualname=f"{source.module_name}.{node.name}",
                        path=source.path,
                        node=node,
                        base_names=[
                            name for base in node.bases
                            if (name := _base_name(base)) is not None
                        ],
                        source=source,
                    )
                    _extract_class(info)
                    self.classes.setdefault(node.name, []).append(info)
                elif isinstance(node, ast.Call):
                    name = called_name(node.func)
                    if name is not None:
                        self.instantiated.add(name)

    # ------------------------------------------------------------------
    # hierarchy queries

    def ancestry(self, info: ClassInfo) -> Iterator[ClassInfo]:
        """All in-index ancestors of ``info``, depth-first, cycle-safe."""
        seen: Set[Tuple[str, str]] = {(info.path, info.name)}
        stack = list(info.base_names)
        while stack:
            base = stack.pop()
            for candidate in self.classes.get(base, []):
                key = (candidate.path, candidate.name)
                if key in seen:
                    continue
                seen.add(key)
                yield candidate
                stack.extend(candidate.base_names)

    def root_names(self, info: ClassInfo) -> Set[str]:
        """Base names of ``info``'s full in-index ancestry, plus its own.

        A name in here matching e.g. ``Module`` means the class derives
        (possibly through files outside the analyzed set) from the
        framework root of that name.
        """
        names = set(info.base_names)
        for ancestor in self.ancestry(info):
            names.update(ancestor.base_names)
        return names

    def subclasses_of(self, roots: FrozenSet[str]) -> List[ClassInfo]:
        """Every class whose ancestry reaches a root name (excluding
        classes *named* as a root, which are the framework itself)."""
        found = []
        for definitions in self.classes.values():
            for info in definitions:
                if info.name in roots:
                    continue
                if self.root_names(info) & roots:
                    found.append(info)
        return found

    def module_classes(self) -> List[ClassInfo]:
        return self.subclasses_of(MODULE_ROOTS)

    def clocked_classes(self) -> List[ClassInfo]:
        return self.subclasses_of(CLOCKED_ROOTS)

    def sink_class_names(self) -> Set[str]:
        """Names of classes usable as modules or ports-level sinks."""
        names = {info.name for info in self.module_classes()}
        names.update(info.name for info in self.subclasses_of(SINK_ROOTS))
        return names

    def has_subclasses(self, info: ClassInfo) -> bool:
        for definitions in self.classes.values():
            for other in definitions:
                if other is not info and info.name in other.base_names:
                    return True
        return False

    def declares(self, info: ClassInfo, attr: str) -> bool:
        """Does ``info`` (or an ancestor below the framework roots)
        declare ``attr`` as a class attribute or ``self.<attr>``?"""
        chain = [info] + [
            ancestor for ancestor in self.ancestry(info)
            if ancestor.name not in MODULE_ROOTS
        ]
        return any(
            attr in c.class_attrs or attr in c.self_attrs for c in chain
        )

    def defines_method(self, info: ClassInfo, method: str) -> bool:
        """Does ``info`` or an in-index ancestor below the roots define
        ``method`` concretely (not as an abstractmethod)?"""
        chain = [info] + [
            ancestor for ancestor in self.ancestry(info)
            if ancestor.name not in MODULE_ROOTS
        ]
        for c in chain:
            node = c.methods.get(method)
            if node is None:
                continue
            decorated = {
                _base_name(d) for d in node.decorator_list
                if _base_name(d) is not None
            }
            if "abstractmethod" not in decorated:
                return True
        return False

    def port_marked(self, info: ClassInfo, method: str) -> bool:
        """Is ``method`` declared a ``# repro: port`` on ``info`` or any
        in-index ancestor?"""
        if method in info.port_methods:
            return True
        return any(
            method in ancestor.port_methods for ancestor in self.ancestry(info)
        )


# ----------------------------------------------------------------------
# collection and caching


def collect_paths(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    collected: List[Path] = []
    for path in paths:
        if path.is_dir():
            collected.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            collected.append(path)
        else:
            raise AnalysisError(f"not a Python source or directory: {path}")
    if not collected:
        raise AnalysisError(f"no Python sources under {[str(p) for p in paths]}")
    return collected


class AstCache:
    """Content-addressed parsed-AST and findings store for lint steps.

    Maps ``sha1(source)`` to the pickled :mod:`ast` tree.  Misses parse
    and populate; :meth:`save` persists for the next invocation (the CI
    lint job caches this file between the ``repro lint`` and ``repro
    check --mode static`` steps).

    Alongside the trees, the cache holds *findings* entries keyed by the
    exact (rule catalog, file contents, rule selection) triple that
    produced them.  AST entries survive rule changes — parsing is
    rule-independent — but findings are dropped whenever the persisted
    rule-catalog hash differs from the running one, so editing or adding
    a rule can never silently replay stale results.
    """

    def __init__(self, path: Optional[Path] = None,
                 catalog: Optional[str] = None) -> None:
        if catalog is None:
            # Late import: registry pulls in the rule modules, which
            # import this module for index helpers.
            from repro.analyze.registry import catalog_hash
            catalog = catalog_hash()
        self.path = path
        self.catalog = catalog
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, bytes] = {}
        self._findings: Dict[str, bytes] = {}
        if path is not None and path.exists():
            try:
                with open(path, "rb") as handle:
                    payload = pickle.load(handle)
                if payload.get("version") == ANALYZER_VERSION:
                    self._entries = payload.get("entries", {})
                    if payload.get("catalog") == catalog:
                        self._findings = payload.get("findings", {})
            except Exception:
                self._entries = {}  # corrupt/stale cache: rebuild silently
                self._findings = {}

    def tree_for(self, text: str, filename: str) -> ast.Module:
        key = hashlib.sha1(text.encode("utf-8")).hexdigest()
        blob = self._entries.get(key)
        if blob is not None:
            try:
                tree = pickle.loads(blob)
                self.hits += 1
                return tree
            except Exception:
                pass
        tree = ast.parse(text, filename=filename)
        self.misses += 1
        self._entries[key] = pickle.dumps(tree)
        return tree

    # ------------------------------------------------------------------
    # cached rule results (keyed by catalog + sources + rule selection)

    def findings_key(self, content_hashes: Sequence[str],
                     rule_ids: Sequence[str]) -> str:
        digest = hashlib.sha1()
        digest.update(self.catalog.encode("utf-8"))
        for chash in sorted(content_hashes):
            digest.update(b"\x1f" + chash.encode("utf-8"))
        digest.update(("\x1e" + ",".join(sorted(rule_ids))).encode("utf-8"))
        return digest.hexdigest()

    def findings_for(self, key: str) -> Optional[object]:
        blob = self._findings.get(key)
        if blob is None:
            return None
        try:
            return pickle.loads(blob)
        except Exception:
            return None

    def store_findings(self, key: str, payload: object) -> None:
        self._findings[key] = pickle.dumps(payload)

    def save(self) -> None:
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "wb") as handle:
            pickle.dump(
                {
                    "version": ANALYZER_VERSION,
                    "catalog": self.catalog,
                    "entries": self._entries,
                    "findings": self._findings,
                },
                handle,
            )


def load_index(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    cache: Optional[AstCache] = None,
) -> ProgramIndex:
    """Parse ``paths`` (files or directories) into a :class:`ProgramIndex`."""
    root = root if root is not None else Path.cwd()
    sources = []
    for path in collect_paths(paths):
        text = path.read_text()
        tree = None
        if cache is not None:
            try:
                tree = cache.tree_for(text, str(path))
            except SyntaxError as exc:
                raise AnalysisError(f"cannot parse {path}: {exc}") from exc
        sources.append(SourceFile(path, root, text, tree=tree))
    return ProgramIndex(sources)
