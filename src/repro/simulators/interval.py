"""Interval-analysis analytical simulator (GPUMech-style).

The paper's related work contrasts Swift-Sim with pure analytical models
— GPUMech, MDM, GCoM — that compute GPU performance from mathematical
equations over per-warp *interval profiles* instead of simulating
components.  This module implements that class of model as a fourth
design point, both to reproduce the comparison and to demonstrate the
other end of the framework's accuracy/speed spectrum:

1. **Interval profiling.**  Each warp's trace is walked once on an
   isolated in-order timeline: issue takes a cycle, a dependent
   instruction waits for its producer's latency (execution-unit latency
   for arithmetic, the Eq. 1 expectation for memory, the shared-memory
   constant for LDS/STS).  The walk yields the warp's solo execution
   time ``T1`` and its issue count.
2. **Multiprogramming.**  Warps co-resident on a sub-core overlap each
   other's stalls; interval theory approximates the sub-core's busy time
   as ``max(total issue cycles, mean T1)`` — latency-bound below the
   multiprogramming point, throughput-bound above it.
3. **Waves.**  Blocks launch in occupancy-limited waves across SMs;
   kernel time is the sum of per-wave times.

No engine, no modules, no per-cycle state: one pass over the trace plus
arithmetic.  Accuracy is correspondingly coarser — contention appears
only through the Eq. 1 expectations — which is exactly the limitation
(§II-B) that motivates hybrid simulation.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.core.occupancy import blocks_per_sm as occupancy_blocks_per_sm
from repro.errors import SimulationError
from repro.frontend.config import GPUConfig
from repro.frontend.isa import InstKind, MemSpace
from repro.frontend.trace import ApplicationTrace, BlockTrace, KernelTrace
from repro.memory.analytical import MemoryProfile
from repro.simulators.base import GPUSimulator
from repro.simulators.results import KernelResult, SimulationResult
from repro.utils.bitops import ceil_div

#: Fixed pipeline-fill/launch overhead charged once per wave.
WAVE_RAMP_CYCLES = 20


class WarpIntervalProfile:
    """Solo-execution statistics of one warp."""

    __slots__ = ("issue_cycles", "solo_cycles", "memory_stall_cycles")

    def __init__(self, issue_cycles: int, solo_cycles: int, memory_stall_cycles: int) -> None:
        self.issue_cycles = issue_cycles
        self.solo_cycles = solo_cycles
        self.memory_stall_cycles = memory_stall_cycles


class IntervalSimulator(GPUSimulator):
    """Pure analytical performance model over interval profiles."""

    name = "interval-analytical"

    def __init__(self, config: GPUConfig, hit_rate_source: str = "cache_sim") -> None:
        super().__init__(config)
        self.hit_rate_source = hit_rate_source
        self._unit_latency = {
            unit_config.unit: unit_config.latency
            for unit_config in config.sm.exec_units
        }

    # ------------------------------------------------------------------
    # interval profiling

    def _instruction_latency(self, inst, memory_profile: MemoryProfile) -> int:
        kind = inst.kind
        if kind in (InstKind.BARRIER, InstKind.MEMBAR, InstKind.EXIT):
            return 1
        if kind is InstKind.BRANCH:
            return 2
        if inst.is_memory:
            if inst.mem_space is MemSpace.SHARED:
                return self.config.sm.shared_mem_latency
            latency, __tx, __rd = memory_profile.expected(inst.pc)
            return latency
        base = self._unit_latency.get(inst.unit)
        if base is None:
            raise SimulationError(f"no latency for unit {inst.unit.value}")
        return base * inst.latency_factor

    def profile_warp(self, warp, memory_profile: MemoryProfile) -> WarpIntervalProfile:
        """Walk one warp's trace on an isolated in-order timeline."""
        reg_ready: Dict[int, int] = {}
        now = 0
        memory_stalls = 0
        issued = 0
        for inst in warp.instructions:
            ready = now
            for reg in inst.src_regs:
                release = reg_ready.get(reg, 0)
                if release > ready:
                    ready = release
            for reg in inst.dest_regs:
                release = reg_ready.get(reg, 0)
                if release > ready:
                    ready = release
            stall = ready - now
            if stall > 0 and inst.src_regs:
                # Attribute the stall to memory when any producer was a load.
                memory_stalls += stall
            now = ready + 1  # issue cycle
            issued += 1
            latency = self._instruction_latency(inst, memory_profile)
            for reg in inst.dest_regs:
                reg_ready[reg] = now + latency
        # The warp retires when its last write lands.
        end = max([now] + list(reg_ready.values()))
        return WarpIntervalProfile(issued, end, memory_stalls)

    # ------------------------------------------------------------------
    # occupancy and waves

    def blocks_per_sm(self, block: BlockTrace) -> int:
        """How many copies of ``block`` one SM can host simultaneously."""
        return occupancy_blocks_per_sm(self.config, block)

    def estimate_kernel(self, kernel: KernelTrace, memory_profile: MemoryProfile) -> int:
        """Estimated cycles for one kernel launch."""
        profiles = [
            self.profile_warp(warp, memory_profile)
            for block in kernel.blocks
            for warp in block.warps
        ]
        mean_solo = sum(p.solo_cycles for p in profiles) / len(profiles)
        total_issue = sum(p.issue_cycles for p in profiles)

        capacity = self.blocks_per_sm(kernel.blocks[0])
        num_sms = min(self.config.num_sms, len(kernel.blocks))
        blocks_per_wave = capacity * num_sms
        waves = ceil_div(len(kernel.blocks), blocks_per_wave)

        # Per-wave issue bandwidth: every SM issues up to
        # sub_cores * issue_width instructions per cycle.
        issue_rate = num_sms * self.config.sm.sub_cores * self.config.sm.issue_width
        issue_bound = ceil_div(ceil_div(total_issue, waves), issue_rate)
        wave_cycles = max(issue_bound, round(mean_solo)) + WAVE_RAMP_CYCLES
        return waves * wave_cycles

    # ------------------------------------------------------------------

    def simulate(self, app: ApplicationTrace, gather_metrics: bool = False) -> SimulationResult:
        """Estimate ``app``'s cycles (``gather_metrics`` accepted for API
        compatibility; analytical models have no counters to gather)."""
        profile_started = time.perf_counter()
        memory_profiles = MemoryProfile.for_application(
            self.config, app.kernels, source=self.hit_rate_source, memo_key=app
        )
        profile_seconds = time.perf_counter() - profile_started
        started = time.perf_counter()
        clock = 0
        kernels: List[KernelResult] = []
        for kernel, memory_profile in zip(app.kernels, memory_profiles):
            cycles = self.estimate_kernel(kernel, memory_profile)
            kernels.append(
                KernelResult(
                    name=kernel.name,
                    start_cycle=clock,
                    end_cycle=clock + cycles,
                    instructions=kernel.num_instructions,
                )
            )
            clock += cycles
        return SimulationResult(
            app_name=app.name,
            simulator_name=self.name,
            gpu_name=self.config.name,
            total_cycles=clock,
            kernels=kernels,
            metrics=None,
            wall_time_seconds=time.perf_counter() - started,
            profile_seconds=profile_seconds,
        )
