"""Determinism verification: serial, parallel, and repeated runs agree.

Three reproducibility contracts, each load-bearing for the ROADMAP's
push toward sharding/async/caching:

* **repeatability** — regenerating a workload (every generator is
  seeded via :func:`repro.utils.rng.derive_seed`) and re-simulating it
  must reproduce the cycle timeline *and every counter* bit-identically;
* **serial/parallel equivalence** — the multiprocess
  :func:`repro.simulators.parallel.simulate_apps_parallel` driver must
  return exactly what in-process serial simulation returns (workers
  rebuild simulators from picklable state; nothing may leak in);
* **harness equivalence** — the serial :class:`repro.eval.harness`
  evaluation path must report the same cycles as the parallel driver.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from repro.eval.harness import EvaluationHarness
from repro.frontend.config import GPUConfig
from repro.simulators.base import PlanSimulator
from repro.simulators.parallel import simulate_apps_parallel
from repro.simulators.results import SimulationResult
from repro.tracegen.suites import make_app
from repro.check.report import CheckFinding, info, violation

_CHECK = "determinism"


def _kernel_tuples(result: SimulationResult):
    return [(k.name, k.start_cycle, k.end_cycle) for k in result.kernels]


def _check_repeatability(
    simulator_cls: Type[PlanSimulator],
    config: GPUConfig,
    app_name: str,
    scale: str,
) -> List[CheckFinding]:
    """Two independent generate+simulate passes must be bit-identical."""
    runs = []
    for _ in range(2):
        app = make_app(app_name, scale=scale)
        runs.append(simulator_cls(config).simulate(app))
    first, second = runs
    subject = f"{first.simulator_name} x {app_name}"
    findings: List[CheckFinding] = []
    if first.total_cycles != second.total_cycles:
        findings.append(violation(
            _CHECK, subject,
            f"repeated runs disagree on cycles: {first.total_cycles} "
            f"vs {second.total_cycles}",
        ))
    if _kernel_tuples(first) != _kernel_tuples(second):
        findings.append(violation(
            _CHECK, subject, "repeated runs disagree on per-kernel cycles",
        ))
    if first.metrics is not None and second.metrics is not None:
        if first.metrics.as_dict() != second.metrics.as_dict():
            findings.append(violation(
                _CHECK, subject, "repeated runs disagree on counters",
            ))
    if not findings:
        findings.append(info(
            _CHECK, subject,
            f"two generate+simulate passes bit-identical "
            f"({first.total_cycles} cycles)",
        ))
    return findings


def _check_parallel_equivalence(
    simulator_cls: Type[PlanSimulator],
    config: GPUConfig,
    app_names: Sequence[str],
    scale: str,
    workers: Optional[int] = None,
) -> List[CheckFinding]:
    """Serial in-process, pooled, and harness runs must agree exactly."""
    findings: List[CheckFinding] = []
    apps = [make_app(name, scale=scale) for name in app_names]
    simulator = simulator_cls(config)
    serial = simulate_apps_parallel(simulator, apps, workers=1)
    pooled = simulate_apps_parallel(
        simulator, apps, workers=workers if workers is not None else 2
    )
    harness = EvaluationHarness(config, scale=scale, apps=list(app_names))
    suite = harness.evaluate({simulator.name: simulator_cls(config)})
    harness_cycles: Dict[str, int] = {
        row.app_name: row.cycles[simulator.name] for row in suite.rows
    }
    for app in apps:
        subject = f"{simulator.name} x {app.name}"
        serial_result = serial[app.name]
        pooled_result = pooled[app.name]
        if serial_result.total_cycles != pooled_result.total_cycles:
            findings.append(violation(
                _CHECK, subject,
                f"serial vs pooled cycles differ: "
                f"{serial_result.total_cycles} vs {pooled_result.total_cycles}",
            ))
        if _kernel_tuples(serial_result) != _kernel_tuples(pooled_result):
            findings.append(violation(
                _CHECK, subject, "serial vs pooled per-kernel cycles differ",
            ))
        if harness_cycles[app.name] != serial_result.total_cycles:
            findings.append(violation(
                _CHECK, subject,
                f"eval harness cycles differ from parallel driver: "
                f"{harness_cycles[app.name]} vs {serial_result.total_cycles}",
            ))
    if not findings:
        findings.append(info(
            _CHECK, simulator.name,
            f"serial, pooled, and harness runs identical over "
            f"{len(apps)} app(s)",
        ))
    return findings


def determinism_check(
    config: GPUConfig,
    app_names: Sequence[str],
    scale: str = "tiny",
    simulator_classes: Optional[Sequence[Type[PlanSimulator]]] = None,
    workers: Optional[int] = None,
) -> List[CheckFinding]:
    """Run all determinism contracts over ``app_names``."""
    if simulator_classes is None:
        from repro.simulators.swift_basic import SwiftSimBasic

        simulator_classes = [SwiftSimBasic]
    findings: List[CheckFinding] = []
    for simulator_cls in simulator_classes:
        for app_name in app_names:
            findings.extend(
                _check_repeatability(simulator_cls, config, app_name, scale)
            )
        findings.extend(_check_parallel_equivalence(
            simulator_cls, config, app_names, scale, workers=workers
        ))
    return findings
