"""Cycle-accurate execution units (the Accel-Sim-like ALU pipeline).

A :class:`PipelinedExecutionUnit` models one unit class of one sub-core
the way a per-cycle simulator does: the dispatch port is occupied for the
warp's lane passes, instructions then travel down the pipeline, and at
the end they compete for a writeback slot on the sub-core's shared
:class:`ResultBus` — retiring through a completion callback only when a
slot is granted.  The unit must be ticked every cycle, which is exactly
the per-stage bookkeeping the hybrid model of §III-D1 removes.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

from repro.frontend.config import ExecUnitConfig
from repro.frontend.trace import TraceInstruction
from repro.sim.module import ModelLevel, Module
from repro.sim.ports import PENDING, CompletionListener, InstructionSink, IssueResult


class ResultBus:
    """Writeback port shared by the execution units of one sub-core.

    ``width`` results can be written back per cycle; excess writebacks
    wait, modeling result-bus contention.
    """

    __slots__ = ("width", "_cycle", "_used")

    def __init__(self, width: int = 1) -> None:
        self.width = width
        self._cycle = -1
        self._used = 0

    def grant(self, cycle: int) -> bool:
        """Try to claim a writeback slot at ``cycle``."""
        if cycle != self._cycle:
            self._cycle = cycle
            self._used = 0
        if self._used >= self.width:
            return False
        self._used += 1
        return True

    def reset(self) -> None:
        self._cycle = -1
        self._used = 0


class PipelinedExecutionUnit(Module, InstructionSink):
    """One execution-unit class, simulated stage-by-stage."""

    component = "alu_pipeline"
    level = ModelLevel.CYCLE_ACCURATE

    def __init__(
        self,
        config: ExecUnitConfig,
        listener: CompletionListener,
        result_bus: ResultBus,
        name: str = "",
    ) -> None:
        super().__init__(name or f"exec_{config.unit.value}")
        self.config = config
        self.listener = listener
        self.result_bus = result_bus
        self._port_free = 0
        self._pipeline: List[Tuple[int, int, object, TraceInstruction]] = []
        self._seq = 0

    def reset(self) -> None:
        super().reset()
        self._port_free = 0
        self._pipeline.clear()
        self._seq = 0

    @property
    def port_free_cycle(self) -> int:
        """When the dispatch port next accepts a warp (for wake planning)."""
        return self._port_free

    @property
    def busy(self) -> bool:
        return bool(self._pipeline)

    def try_issue(self, warp, inst: TraceInstruction, cycle: int) -> IssueResult:
        if self._port_free > cycle:
            self.counters.add("dispatch_stalls")
            return None
        interval = self.config.dispatch_interval
        self._port_free = cycle + interval
        latency = self.config.latency * inst.latency_factor
        done = cycle + interval - 1 + latency
        heapq.heappush(self._pipeline, (done, self._seq, warp, inst))
        self._seq += 1
        self.counters.add("instructions")
        self.counters.add("busy_cycles", interval)
        return PENDING

    def tick(self, cycle: int) -> None:
        """Drain writebacks whose pipeline traversal completed."""
        pipeline = self._pipeline
        while pipeline and pipeline[0][0] <= cycle:
            if not self.result_bus.grant(cycle):
                # Writeback port taken: the result retries next cycle.
                done, seq, warp, inst = heapq.heappop(pipeline)
                heapq.heappush(pipeline, (cycle + 1, seq, warp, inst))
                self.counters.add("writeback_stalls")
                break
            __, __seq, warp, inst = heapq.heappop(pipeline)
            self.listener.on_complete(warp, inst, cycle)
