"""Forensic bundles: the crime-scene dump for guard violations.

When the watchdog declares a stall or an invariant guard trips, the
interesting state is about to be destroyed by the exception unwinding.
A bundle preserves it on disk first:

.. code-block:: text

    <bundle_dir>/bundle_<kind>_c<cycle>/
        manifest.json       kind, cycle, config hash, diagnosis, run meta
        modules.json        per-module state_summary() + counters
        trace_window.jsonl  trailing engine events (tick/wake), one per line

Everything is JSON so a human (or a later triage script) can read it
without unpickling anything, and deterministic (sorted keys, no
wall-clock timestamps) so two runs of the same failure produce
byte-identical bundles.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.engine import Engine


def config_hash(config: object) -> str:
    """Stable hash of a GPU configuration for bundle/checkpoint meta.

    Accepts either a :class:`repro.frontend.GPUConfig`-shaped object or
    a plain dict; unknown shapes hash their ``repr`` (still stable for
    dataclasses).
    """
    if isinstance(config, dict):
        payload = config
    else:
        # Local import: keeps repro.guard importable without dragging
        # the frontend in for engine-only users.
        try:
            from repro.frontend.config_io import gpu_config_to_dict

            payload = gpu_config_to_dict(config)
        except Exception:
            payload = {"repr": repr(config)}
    blob = json.dumps(payload, sort_keys=True, default=repr).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def _module_records(engine: Engine) -> List[Dict[str, object]]:
    records: List[Dict[str, object]] = []
    for root in engine.modules:
        for module in root.walk():
            records.append(
                {
                    "name": module.name,
                    "component": module.component,
                    "level": module.level.value,
                    "counters": dict(
                        sorted(module.counters.as_dict().items())
                    ),
                    "state": module.state_summary(),
                }
            )
    return records


def write_bundle(
    bundle_dir: Path,
    kind: str,
    cycle: int,
    engine: Engine,
    diagnosis: Optional[Dict[str, object]] = None,
    events: Optional[Iterable[Tuple[int, str, str]]] = None,
    meta: Optional[Dict[str, object]] = None,
) -> Path:
    """Write one forensic bundle; returns the bundle directory.

    ``kind`` is ``"stall"`` or ``"invariant"`` (anything short and
    filesystem-safe works).  ``events`` is the watchdog's trailing
    ``(cycle, event, module)`` window, if one was being kept.
    """
    bundle_dir = Path(bundle_dir)
    target = bundle_dir / f"bundle_{kind}_c{cycle:012d}"
    # A re-raised violation at the same cycle (e.g. a retry) should not
    # clobber the original evidence; suffix until free.
    suffix = 0
    final = target
    while final.exists():
        suffix += 1
        final = Path(f"{target}_{suffix}")
    final.mkdir(parents=True)

    manifest: Dict[str, object] = {
        "kind": kind,
        "cycle": cycle,
        "engine_cycle": engine.cycle,
        "modules": sum(1 for root in engine.modules for _ in root.walk()),
        "diagnosis": diagnosis or {},
    }
    if meta:
        manifest["run"] = dict(meta)
    (final / "manifest.json").write_text(
        json.dumps(manifest, sort_keys=True, indent=2, default=repr) + "\n",
        encoding="utf-8",
    )
    (final / "modules.json").write_text(
        json.dumps(_module_records(engine), sort_keys=True, indent=2) + "\n",
        encoding="utf-8",
    )
    with (final / "trace_window.jsonl").open("w", encoding="utf-8") as handle:
        for event_cycle, event, module_name in events or ():
            handle.write(
                json.dumps(
                    {
                        "cycle": event_cycle,
                        "event": event,
                        "module": module_name,
                    },
                    sort_keys=True,
                )
                + "\n"
            )
    return final
