"""Experiment A3 (ours) — Eq. 1 hit rates from the reuse-distance tool vs
the functional cache simulation.

The paper allows either source ("obtained using a reuse distance tool or
cache simulator").  This ablation quantifies how much the LRU-only
fully-associative reuse-distance approximation costs in predicted cycles
relative to profiling with the real sectored caches.
"""

import pytest

from repro.simulators.swift_memory import SwiftSimMemory
from repro.tracegen.suites import make_app

APPS = ("hotspot", "atax", "bfs")


@pytest.fixture(scope="module")
def sweep(gpu, scale):
    results = {}
    for app_name in APPS:
        app = make_app(app_name, scale=scale)
        cache_sim = SwiftSimMemory(gpu, hit_rate_source="cache_sim").simulate(
            app, gather_metrics=False
        )
        reuse = SwiftSimMemory(gpu, hit_rate_source="reuse_distance").simulate(
            app, gather_metrics=False
        )
        results[app_name] = (cache_sim, reuse)
    return results


def test_sources_agree_within_factor_two(sweep, benchmark):
    benchmark(lambda: {a: (c.total_cycles, r.total_cycles) for a, (c, r) in sweep.items()})
    print()
    for app_name, (cache_sim, reuse) in sweep.items():
        delta = 100.0 * (reuse.total_cycles - cache_sim.total_cycles) / cache_sim.total_cycles
        print(f"  {app_name:8s} cache_sim={cache_sim.total_cycles:8d}  "
              f"reuse_distance={reuse.total_cycles:8d}  ({delta:+.1f}%)")
        assert 0.5 * cache_sim.total_cycles <= reuse.total_cycles <= 2.0 * cache_sim.total_cycles


def test_profiling_cost_recorded(sweep, benchmark):
    benchmark(lambda: {a: c.profile_seconds for a, (c, r) in sweep.items()})
    for app_name, (cache_sim, reuse) in sweep.items():
        assert cache_sim.profile_seconds > 0
        assert reuse.profile_seconds > 0
