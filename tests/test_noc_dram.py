"""Unit tests for the interconnect and DRAM partition models."""

from repro.frontend.config import DRAMConfig, NoCConfig
from repro.memory.dram import DRAMPartition
from repro.memory.noc import DetailedNoC, ReservedNoC


class TestReservedNoC:
    def test_uncontended_latency(self):
        noc = ReservedNoC(NoCConfig(latency=8, flits_per_cycle=1), 4)
        assert noc.send_request(100, 0, flits=1) == 108

    def test_contention_serializes(self):
        noc = ReservedNoC(NoCConfig(latency=8, flits_per_cycle=1), 4)
        first = noc.send_request(100, 0)
        second = noc.send_request(100, 0)
        assert second == first + 1
        assert noc.counters.get("stall_cycles") == 1

    def test_partitions_independent(self):
        noc = ReservedNoC(NoCConfig(latency=8), 4)
        assert noc.send_request(100, 0) == noc.send_request(100, 1)

    def test_directions_independent(self):
        noc = ReservedNoC(NoCConfig(latency=8), 4)
        assert noc.send_request(100, 0) == noc.send_response(100, 0)

    def test_multi_flit_occupancy(self):
        noc = ReservedNoC(NoCConfig(latency=0, flits_per_cycle=1), 2)
        first = noc.send_request(0, 0, flits=4)
        assert first == 3  # 4 flits at 1/cycle, last leaves at cycle 3
        assert noc.send_request(0, 0, flits=1) == 4

    def test_reset(self):
        noc = ReservedNoC(NoCConfig(latency=8), 2)
        noc.send_request(0, 0)
        noc.reset()
        assert noc.send_request(0, 0) == 8
        assert noc.counters.get("flits") == 1


class TestDetailedNoC:
    def _make(self):
        delivered = {"req": [], "resp": []}
        noc = DetailedNoC(
            NoCConfig(latency=2, flits_per_cycle=1),
            2,
            deliver_request=lambda p, payload, c: delivered["req"].append((p, payload, c)),
            deliver_response=lambda p, payload, c: delivered["resp"].append((p, payload, c)),
        )
        return noc, delivered

    def test_delivery_after_latency(self):
        noc, delivered = self._make()
        noc.send_request(0, "pkt")
        for cycle in range(10):
            noc.tick(cycle)
            if delivered["req"]:
                break
        # Flit moves at cycle 0, matures at 0 + latency + 1 = 3.
        assert delivered["req"] == [(0, "pkt", 3)]

    def test_bandwidth_one_flit_per_cycle(self):
        noc, delivered = self._make()
        noc.send_request(0, "a")
        noc.send_request(0, "b")
        for cycle in range(10):
            noc.tick(cycle)
        arrive = [c for (__, __p, c) in delivered["req"]]
        assert arrive == [3, 4]

    def test_multi_flit_packet_head_of_line(self):
        noc, delivered = self._make()
        noc.send_request(0, "big", flits=3)
        noc.send_request(0, "small", flits=1)
        for cycle in range(10):
            noc.tick(cycle)
        payloads = [(p, c) for (__, p, c) in delivered["req"]]
        assert payloads == [("big", 5), ("small", 6)]

    def test_responses_independent_of_requests(self):
        noc, delivered = self._make()
        noc.send_request(1, "q")
        noc.send_response(1, "r")
        for cycle in range(6):
            noc.tick(cycle)
        assert delivered["req"][0][2] == delivered["resp"][0][2]

    def test_busy_flag(self):
        noc, __ = self._make()
        assert not noc.busy
        noc.send_request(0, "x")
        assert noc.busy
        for cycle in range(6):
            noc.tick(cycle)
        assert not noc.busy


class TestDRAMPartition:
    def _dram(self, **overrides):
        params = dict(latency=100, row_hit_latency=30, banks_per_partition=4,
                      row_bytes=1024, bytes_per_cycle=16)
        params.update(overrides)
        return DRAMPartition(DRAMConfig(**params), partition_id=0)

    def test_row_miss_then_hit(self):
        dram = self._dram()
        assert dram.access_latency(0) == 100
        assert dram.access_latency(1) == 30  # same 1KB row
        assert dram.counters.get("row_hits") == 1
        assert dram.counters.get("row_misses") == 1

    def test_different_rows_same_bank_conflict(self):
        dram = self._dram()
        dram.access_latency(0)
        # 4 banks x 1KB rows: line 32 (byte 4096) maps back to bank 0, next row.
        assert dram.access_latency(32) == 100

    def test_banks_hold_independent_rows(self):
        dram = self._dram()
        dram.access_latency(0)   # bank 0
        dram.access_latency(8)   # byte 1024 -> bank 1
        assert dram.access_latency(1) == 30  # bank 0 row still open

    def test_burst_cycles(self):
        dram = self._dram()
        assert dram.burst_cycles(1) == 2  # 32B at 16B/cycle
        assert dram.burst_cycles(4) == 8

    def test_reserve_serializes_channel(self):
        dram = self._dram()
        first = dram.reserve(0, 0)
        second = dram.reserve(0, 1)
        assert first == 0 + 100 + 2
        # Second waits for the 2-cycle burst, then row hit.
        assert second == 2 + 30 + 2

    def test_write_reserve_completes_at_buffering(self):
        dram = self._dram()
        done = dram.reserve(0, 0, sectors=2, is_write=True)
        assert done == 4  # 2 sectors x 2 cycles, no access latency

    def test_reset(self):
        dram = self._dram()
        dram.access_latency(0)
        dram.reserve(0, 0)
        dram.reset()
        # Channel free and rows closed again: full row-miss latency.
        assert dram.reserve(0, 0) == 102
