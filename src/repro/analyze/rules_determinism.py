"""Determinism rules (DT2xx).

The whole PR 1/PR 2 verification stack — shadow-clocking
bit-equivalence, chaos-retry convergence, journal resume — rests on
simulations being bit-reproducible.  These rules flag the classic ways
Python code silently loses that property *inside clocked code paths*,
which the analyzer defines as the method bodies (including nested
functions) of :class:`~repro.sim.module.Module` subclasses.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analyze.findings import LintFinding
from repro.analyze.index import ClassInfo, ProgramIndex, called_name
from repro.analyze.registry import rule

#: time/datetime attributes whose call reads the wall clock.
_WALL_ATTRS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
    "now", "utcnow", "today",
})
_WALL_RECEIVERS = frozenset({"time", "datetime", "date"})

#: random-module functions that use the shared, unseeded global RNG.
_GLOBAL_RNG_FNS = frozenset({
    "random", "randint", "randrange", "randbytes", "getrandbits", "choice",
    "choices", "shuffle", "sample", "uniform", "triangular", "betavariate",
    "expovariate", "gammavariate", "gauss", "lognormvariate", "normalvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate", "seed",
})
_NUMPY_RNG_FNS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "seed", "uniform", "normal",
})


def _receiver_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Attribute):
        value = func.value
        if isinstance(value, ast.Name):
            return value.id
        if isinstance(value, ast.Attribute):
            return value.attr
    return None


def _clocked_methods(index: ProgramIndex) -> Iterator[Tuple[ClassInfo, ast.FunctionDef]]:
    for info in index.module_classes():
        for name, method in info.methods.items():
            yield info, method


def _method_finding(rule_id: str, severity: str, info: ClassInfo,
                    method: ast.FunctionDef, node: ast.AST, message: str) -> LintFinding:
    return LintFinding(
        rule=rule_id, severity=severity, path=info.path,
        line=getattr(node, "lineno", method.lineno),
        scope=f"{info.name}.{method.name}", message=message,
    )


@rule(
    "DT201",
    "no wall-clock reads in clocked code paths",
    "error",
    "time.time()/datetime.now() inside a module's simulated behavior makes "
    "two runs of the same trace diverge, breaking shadow-clocking "
    "bit-equivalence and journal-resume convergence.  Wall-clock "
    "*measurement* belongs in the drivers (PlanSimulator, the harness), "
    "never in modeled state.",
)
def check_wall_clock(index: ProgramIndex) -> Iterator[LintFinding]:
    for info, method in _clocked_methods(index):
        for node in ast.walk(method):
            if not isinstance(node, ast.Call):
                continue
            attr = called_name(node.func)
            receiver = _receiver_name(node.func)
            if attr in _WALL_ATTRS and receiver in _WALL_RECEIVERS:
                yield _method_finding(
                    "DT201", "error", info, method, node,
                    f"wall-clock read {receiver}.{attr}() inside a clocked "
                    f"code path; simulated behavior must depend only on the "
                    f"cycle argument and module state",
                )


@rule(
    "DT202",
    "no unseeded randomness",
    "error",
    "The global random module, os.urandom, and uuid4 cannot be replayed; "
    "every stochastic model in this repo derives a seed via "
    "repro.utils.rng.derive_seed and owns a random.Random instance.",
)
def check_unseeded_random(index: ProgramIndex) -> Iterator[LintFinding]:
    for source in index.files:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            attr = called_name(node.func)
            receiver = _receiver_name(node.func)
            message = None
            if receiver == "random" and attr in _GLOBAL_RNG_FNS:
                message = (
                    f"random.{attr}() uses the process-global RNG; construct "
                    f"a seeded random.Random(derive_seed(...)) instead"
                )
            elif receiver == "random" and attr == "Random" and not node.args:
                message = (
                    "random.Random() without a seed draws from OS entropy; "
                    "pass a derived seed"
                )
            elif receiver in ("np", "numpy"):
                if attr == "default_rng" and not node.args:
                    message = "numpy default_rng() without a seed is unreplayable"
            elif attr == "urandom" and receiver == "os":
                message = "os.urandom() is unreplayable entropy"
            elif attr in ("uuid1", "uuid4") and receiver == "uuid":
                message = f"uuid.{attr}() embeds clock/entropy state"
            if message is None and isinstance(node.func, ast.Attribute):
                # numpy.random.<fn> chains: receiver name is "random" with
                # an outer np/numpy value.
                func = node.func
                if (
                    isinstance(func.value, ast.Attribute)
                    and func.value.attr == "random"
                    and isinstance(func.value.value, ast.Name)
                    and func.value.value.id in ("np", "numpy")
                    and attr in _NUMPY_RNG_FNS
                ):
                    message = (
                        f"numpy.random.{attr}() uses numpy's global RNG; "
                        f"use a seeded Generator"
                    )
            if message is not None:
                yield LintFinding(
                    rule="DT202", severity="error", path=source.path,
                    line=node.lineno, scope=source.module_name,
                    message=message,
                )


@rule(
    "DT203",
    "no bare set iteration in clocked code paths",
    "warning",
    "Set iteration order depends on insertion history and hash seeding; "
    "inside a tick it silently reorders issue decisions between runs.  "
    "Wrap the set in sorted() or keep an explicit list.",
)
def check_set_iteration(index: ProgramIndex) -> Iterator[LintFinding]:
    def set_valued(expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in ("set", "frozenset")
        )

    for info, method in _clocked_methods(index):
        iters = []
        for node in ast.walk(method):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append((node, node.iter))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend((node, gen.iter) for gen in node.generators)
        for node, iterable in iters:
            if set_valued(iterable):
                yield _method_finding(
                    "DT203", "warning", info, method, node,
                    "iterates a set in a clocked code path; set order is "
                    "not deterministic across processes — sort it first",
                )


@rule(
    "DT204",
    "no id()-derived keys or ordering in clocked code paths",
    "warning",
    "id() values change between runs and between the parent and its "
    "worker processes; keying or ordering anything on them makes "
    "determinism checks and journal resume flaky.  Key on stable module "
    "names/ranks instead.",
)
def check_id_keys(index: ProgramIndex) -> Iterator[LintFinding]:
    for info, method in _clocked_methods(index):
        for node in ast.walk(method):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
                and len(node.args) == 1
            ):
                yield _method_finding(
                    "DT204", "warning", info, method, node,
                    "id()-derived value in a clocked code path; object "
                    "addresses differ across runs and processes — use a "
                    "stable key (name, registration rank) or `is` checks",
                )
