"""Swift-Sim-Basic (paper §IV-A3).

Built on the Swift-Sim framework by replacing the ALU pipeline with the
hybrid analytical model of §III-D1 (fixed latency + cycle-accurate port
contention) and simplifying the less critical front-end modules
(instruction fetch, decode, operand collection are elided).  The memory
path stays faithful — functional sectored caches with exact
reservation-tracked queue contention — and the Warp Scheduler & Dispatch
and Block Scheduler remain fully cycle-accurate, as in the paper's
working example.
"""

from __future__ import annotations

from repro.sim.plan import SWIFT_BASIC_PLAN
from repro.simulators.base import PlanSimulator


class SwiftSimBasic(PlanSimulator):
    """Hybrid simulator: analytical ALU pipeline, simulated memory."""

    plan = SWIFT_BASIC_PLAN
