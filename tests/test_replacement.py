"""Unit tests for cache replacement policies."""

import pytest

from repro.errors import ConfigError
from repro.memory.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    make_replacement_policy,
)


class TestLRU:
    def test_evicts_least_recently_used(self):
        lru = LRUPolicy(4)
        for way in range(4):
            lru.on_fill(way)
        lru.on_access(0)  # 1 is now oldest
        assert lru.victim([0, 1, 2, 3]) == 1

    def test_access_refreshes(self):
        lru = LRUPolicy(2)
        lru.on_fill(0)
        lru.on_fill(1)
        lru.on_access(0)
        assert lru.victim([0, 1]) == 1

    def test_respects_candidate_restriction(self):
        lru = LRUPolicy(4)
        for way in range(4):
            lru.on_fill(way)
        # Way 0 is LRU but not a candidate.
        assert lru.victim([2, 3]) == 2


class TestFIFO:
    def test_evicts_first_filled(self):
        fifo = FIFOPolicy(3)
        fifo.on_fill(2)
        fifo.on_fill(0)
        fifo.on_fill(1)
        assert fifo.victim([0, 1, 2]) == 2

    def test_access_does_not_refresh(self):
        fifo = FIFOPolicy(2)
        fifo.on_fill(0)
        fifo.on_fill(1)
        fifo.on_access(0)
        fifo.on_access(0)
        assert fifo.victim([0, 1]) == 0

    def test_differs_from_lru_under_hits(self):
        # Same access sequence: LRU and FIFO disagree — the paper's point
        # about analytical models being locked to LRU.
        lru, fifo = LRUPolicy(2), FIFOPolicy(2)
        for policy in (lru, fifo):
            policy.on_fill(0)
            policy.on_fill(1)
            policy.on_access(0)
        assert lru.victim([0, 1]) == 1
        assert fifo.victim([0, 1]) == 0


class TestRandom:
    def test_deterministic_per_seed(self):
        a = RandomPolicy(8, seed=42)
        b = RandomPolicy(8, seed=42)
        picks_a = [a.victim(list(range(8))) for __ in range(20)]
        picks_b = [b.victim(list(range(8))) for __ in range(20)]
        assert picks_a == picks_b

    def test_picks_only_candidates(self):
        policy = RandomPolicy(8, seed=1)
        for __ in range(50):
            assert policy.victim([3, 5]) in (3, 5)


class TestFactory:
    def test_makes_each_policy(self):
        assert isinstance(make_replacement_policy("LRU", 4), LRUPolicy)
        assert isinstance(make_replacement_policy("fifo", 4), FIFOPolicy)
        assert isinstance(make_replacement_policy("Random", 4, seed=3), RandomPolicy)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_replacement_policy("MRU", 4)
