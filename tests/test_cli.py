"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.frontend.config_io import save_gpu_config

from conftest import make_tiny_gpu


@pytest.fixture
def tiny_config_path(tmp_path):
    path = tmp_path / "tiny.json"
    save_gpu_config(make_tiny_gpu(), path)
    return str(path)


class TestInformational:
    def test_apps_lists_all(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        for name in ("bfs", "gemm", "sm", "gru", "pagerank"):
            assert name in out
        for suite in ("rodinia", "polybench", "mars", "tango", "pannotia"):
            assert suite in out

    def test_presets(self, capsys):
        assert main(["presets"]) == 0
        out = capsys.readouterr().out
        assert "rtx2080ti" in out and "68 SMs" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out and "TABLE II" in out and "4352" in out


class TestSimulate:
    def test_simulate_preset_app(self, capsys, tiny_config_path):
        code = main([
            "simulate", "--app", "gemm", "--scale", "tiny",
            "--config", tiny_config_path, "--simulator", "swift-basic",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "swift-basic" in out and "ipc" in out

    def test_simulate_with_metrics_dump(self, capsys, tiny_config_path):
        code = main([
            "simulate", "--app", "sm", "--scale", "tiny",
            "--config", tiny_config_path, "--metrics",
        ])
        assert code == 0
        assert "instructions_committed" in capsys.readouterr().out

    def test_simulate_from_trace_file(self, capsys, tmp_path, tiny_config_path):
        trace_path = tmp_path / "app.trace"
        assert main(["trace", "--app", "nw", "--scale", "tiny",
                     "--out", str(trace_path)]) == 0
        capsys.readouterr()
        code = main([
            "simulate", "--trace", str(trace_path), "--config", tiny_config_path,
        ])
        assert code == 0
        assert "nw" in capsys.readouterr().out

    def test_unknown_app_exits_2(self, capsys):
        assert main(["simulate", "--app", "crysis"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_app_and_trace_exits_2(self, capsys):
        assert main(["simulate"]) == 2
        assert "required" in capsys.readouterr().err

    def test_unknown_preset_exits_2(self, capsys):
        assert main(["simulate", "--app", "bfs", "--gpu", "voodoo2"]) == 2
        assert "error:" in capsys.readouterr().err


class TestCompare:
    def test_compare_prints_all_simulators(self, capsys, tiny_config_path):
        code = main([
            "compare", "--app", "gemm", "--scale", "tiny",
            "--config", tiny_config_path,
        ])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("accel-like", "swift-basic", "swift-memory", "interval", "oracle"):
            assert name in out


class TestAnalyze:
    def test_analyze_prints_bottleneck_report(self, capsys, tiny_config_path):
        code = main([
            "analyze", "--app", "bfs", "--scale", "tiny",
            "--config", tiny_config_path,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "bottleneck classification" in out
        assert "memory intensity" in out

    def test_simulate_with_interval_simulator(self, capsys, tiny_config_path):
        code = main([
            "simulate", "--app", "sm", "--scale", "tiny",
            "--config", tiny_config_path, "--simulator", "interval",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "interval-analytical" in out


class TestReportCommand:
    def test_report_writes_file(self, capsys, tmp_path, monkeypatch):
        import repro.eval.report as report_module
        monkeypatch.setattr(
            report_module, "generate_report",
            lambda **kwargs: "# stub report\n",
        )
        out_path = tmp_path / "EXP.md"
        code = main(["report", "--scale", "tiny", "--out", str(out_path)])
        assert code == 0
        assert out_path.read_text() == "# stub report\n"
        assert "wrote report" in capsys.readouterr().out


class TestCheckCommand:
    def test_check_all_modes_pass(self, capsys, tiny_config_path):
        code = main([
            "check", "--mode", "all", "--apps", "gemm",
            "--config", tiny_config_path,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS: no invariant violations" in out

    def test_check_writes_json_report(self, capsys, tmp_path, tiny_config_path):
        report_path = tmp_path / "check.json"
        code = main([
            "check", "--mode", "shadow-jump", "--apps", "sm",
            "--config", tiny_config_path, "--json", str(report_path),
        ])
        assert code == 0
        data = json.loads(report_path.read_text())
        assert data["ok"] is True
        assert data["mode"] == "shadow-jump"
        assert data["apps"] == ["sm"]
        assert data["violations"] == 0

    def test_check_verbose_shows_info_findings(self, capsys, tiny_config_path):
        code = main([
            "check", "--mode", "sanitize", "--apps", "gemm",
            "--config", tiny_config_path, "--verbose",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[info] sanitizer" in out

    def test_check_violations_exit_1(self, capsys, tiny_config_path):
        # An absurdly tight divergence bound makes the (healthy) hybrid
        # simulators violate it — exercising the failure exit path.
        code = main([
            "check", "--mode", "differential", "--apps", "bfs",
            "--config", tiny_config_path, "--tolerance", "0.0001",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "exceeds" in out

    def test_check_unknown_suite_exits_2(self, capsys, tiny_config_path):
        code = main([
            "check", "--suite", "spec2017", "--config", tiny_config_path,
        ])
        assert code == 2
        assert "unknown suite" in capsys.readouterr().err


class TestFigures:
    def test_figure4_subset(self, capsys, monkeypatch):
        # Full presets are too slow for unit tests; patch the default GPU.
        import repro.eval.figures as figures
        monkeypatch.setattr(figures, "RTX_2080_TI", make_tiny_gpu())
        code = main(["figure4", "--scale", "tiny", "--apps", "gemm,sm"])
        assert code == 0
        out = capsys.readouterr().out
        assert "FIGURE 4" in out and "gemm" in out and "MEAN/GEOMEAN" in out
