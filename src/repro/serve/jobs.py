"""Wire types for the sweep service protocol (``docs/serving.md``).

Requests and responses cross the unix socket as single JSON lines.  A
request names a workload *specification* — ``(app, scale)`` plus a GPU
configuration — rather than shipping trace bytes: trace generation is
deterministic in (app, scale), so the server regenerates the trace and
derives the content-addressed identity ``(trace_hash, config_hash,
simulator)`` itself.  Clients may pin ``trace_hash``/``config_hash``
they computed locally; the server refuses the job if they disagree
(a client-side/server-side drift is a bug, not a cache miss).

The tagging contract: every response carries ``degraded`` (boolean).
Exact answers say ``degraded: false``; analytic-tier fallbacks say
``degraded: true`` **and** carry ``error_bound_pct`` /
``error_mean_pct`` so no caller can mistake an approximation for a
simulation.  Degraded answers are never cached (``repro.serve.store``
enforces this independently).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ServeError

#: Documented accuracy envelope of the analytic fallback tier versus
#: swift-basic (docs/analytic-tier.md): ~20-25% mean divergence across
#: the workload suite, worst case near 50% (gemm).
ANALYTIC_ERROR_BOUND_PCT = 50.0
ANALYTIC_ERROR_MEAN_PCT = 25.0

#: Simulator used by the degraded tier.
DEGRADED_SIMULATOR = "swift-analytic"


@dataclass(frozen=True)
class JobRequest:
    """One submitted job, parsed and validated from the wire form."""

    app: str
    scale: str
    simulator: str
    config: Optional[Dict] = None  # gpu_config_to_dict form; None = preset
    gpu: str = "rtx2080ti"         # preset key used when config is None
    deadline_seconds: Optional[float] = None
    allow_degraded: bool = True
    trace_hash: str = ""           # optional client-side pins, verified
    config_hash: str = ""
    #: 0 = serial engine; 2 = two-way SM/memory sharded lockstep run.
    #: Sharded results are bit-identical to serial by the engine
    #: contract, so the cache identity deliberately does NOT include
    #: this field — a cached serial answer satisfies a sharded request
    #: and vice versa.
    parallel_shards: int = 0
    #: Optional shard-fault drill knobs (sharded runs only): keys
    #: ``seed``, ``kill_rate``, ``hang_rate``, ``max_attempts``,
    #: ``degrade``.  Terminal (non-degradable) shard faults surface as
    #: execution failures and trip the per-region circuit breaker.
    shard_fault: Optional[Dict] = None

    @classmethod
    def from_dict(cls, payload: Dict) -> "JobRequest":
        if not isinstance(payload, dict):
            raise ServeError("job request must be a JSON object")
        app = payload.get("app", "")
        simulator = payload.get("simulator", "")
        if not app or not isinstance(app, str):
            raise ServeError("job request needs a non-empty 'app'")
        if not simulator or not isinstance(simulator, str):
            raise ServeError("job request needs a non-empty 'simulator'")
        config = payload.get("config")
        if config is not None and not isinstance(config, dict):
            raise ServeError("'config' must be a GPU config object")
        deadline = payload.get("deadline_seconds")
        if deadline is not None:
            if not isinstance(deadline, (int, float)) or deadline <= 0:
                raise ServeError(
                    f"'deadline_seconds' must be positive, got {deadline!r}"
                )
            deadline = float(deadline)
        shards = payload.get("parallel_shards", 0)
        if not isinstance(shards, int) or shards not in (0, 2):
            raise ServeError(
                f"'parallel_shards' must be 0 (serial) or 2 (two-way "
                f"split), got {shards!r}"
            )
        shard_fault = payload.get("shard_fault")
        if shard_fault is not None:
            if not isinstance(shard_fault, dict):
                raise ServeError("'shard_fault' must be an object")
            if shards == 0:
                raise ServeError(
                    "'shard_fault' requires a sharded run "
                    "(set parallel_shards)"
                )
        return cls(
            app=app,
            scale=str(payload.get("scale", "tiny")),
            simulator=simulator,
            config=config,
            gpu=str(payload.get("gpu", "rtx2080ti")),
            deadline_seconds=deadline,
            allow_degraded=bool(payload.get("allow_degraded", True)),
            trace_hash=str(payload.get("trace_hash", "")),
            config_hash=str(payload.get("config_hash", "")),
            parallel_shards=shards,
            shard_fault=shard_fault,
        )

    def to_dict(self) -> Dict:
        payload = {
            "app": self.app,
            "scale": self.scale,
            "simulator": self.simulator,
            "gpu": self.gpu,
            "allow_degraded": self.allow_degraded,
        }
        if self.config is not None:
            payload["config"] = self.config
        if self.deadline_seconds is not None:
            payload["deadline_seconds"] = self.deadline_seconds
        if self.trace_hash:
            payload["trace_hash"] = self.trace_hash
        if self.config_hash:
            payload["config_hash"] = self.config_hash
        if self.parallel_shards:
            payload["parallel_shards"] = self.parallel_shards
        if self.shard_fault is not None:
            payload["shard_fault"] = self.shard_fault
        return payload


def response_ok(
    key: str,
    result: Dict,
    *,
    cached: bool,
    degraded: bool = False,
) -> Dict:
    """An answer-bearing response, exact or (tagged) degraded."""
    response = {
        "status": "ok",
        "key": key,
        "cached": cached,
        "degraded": degraded,
        "result": result,
    }
    if degraded:
        response["error_bound_pct"] = ANALYTIC_ERROR_BOUND_PCT
        response["error_mean_pct"] = ANALYTIC_ERROR_MEAN_PCT
        response["degraded_simulator"] = DEGRADED_SIMULATOR
    return response


def response_error(kind: str, message: str, *, key: str = "") -> Dict:
    """A typed failure response (load-shed, bad request, exec failure)."""
    response = {
        "status": "error",
        "kind": kind,
        "message": message,
        "degraded": False,
    }
    if key:
        response["key"] = key
    return response
