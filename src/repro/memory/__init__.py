"""GPU memory-system substrate.

Contains every component on the memory path of Figure 1: the per-warp
access coalescer, the sectored L1 and banked sectored L2 caches with
MSHRs, the SM<->partition crossbar NoC, the DRAM partitions, the two
composed timing models (reservation-queued for Swift-Sim, per-cycle
detailed for the Accel-Sim-like baseline), the reuse-distance profiler,
and the Eq. 1 analytical memory model.
"""

from repro.memory.access import SectorTransaction, coalesce
from repro.memory.analytical import AnalyticalMemoryModel, MemoryProfile
from repro.memory.cache import AccessStatus, SectoredCache
from repro.memory.dram import DRAMPartition
from repro.memory.hierarchy import DetailedMemorySystem, QueuedMemorySystem
from repro.memory.l2 import partition_for_line
from repro.memory.noc import DetailedNoC, ReservedNoC
from repro.memory.replacement import make_replacement_policy
from repro.memory.reuse_distance import ReuseDistanceProfiler

__all__ = [
    "AccessStatus",
    "AnalyticalMemoryModel",
    "DetailedMemorySystem",
    "DetailedNoC",
    "DRAMPartition",
    "MemoryProfile",
    "QueuedMemorySystem",
    "ReservedNoC",
    "ReuseDistanceProfiler",
    "SectorTransaction",
    "SectoredCache",
    "coalesce",
    "make_replacement_policy",
    "partition_for_line",
]
