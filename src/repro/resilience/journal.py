"""Checkpoint/resume journals for sweep runs.

Two layers live here:

* :class:`JsonLinesJournal` — the reusable durability discipline: a
  JSON-lines file whose header lands via temp-file + atomic
  ``os.replace`` (a half-created journal never exists), whose appends
  are flushed and ``fsync``'d before returning (a killed writer loses at
  most the in-flight line), and whose loader tolerates a torn trailing
  line by truncating it away before the first new append.  The service
  journal (:mod:`repro.serve.journal`) builds on the same base.
* :class:`RunJournal` — the sweep journal: one line per completed
  ``(app, gpu, simulator)`` triple carrying the full (metrics-free)
  :class:`~repro.simulators.results.SimulationResult`.

Because simulation here is deterministic (see ``docs/verification.md``),
replaying the missing triples after a resume reproduces the interrupted
sweep bit-identically — asserted by ``repro check --mode resilience``.

The header optionally records content hashes of the invocation that
created the journal (``config_hash``, ``workload_hash`` — see
:mod:`repro.serve.keys`); ``repro eval --resume`` refuses to mix results
from a different configuration or workload by comparing them.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Iterator, Optional, Tuple

from repro.errors import SimulationError
from repro.simulators.results import KernelResult, SimulationResult

JOURNAL_VERSION = 1

#: A completed-work key: (app_name, gpu_name, simulator_name).
TripleKey = Tuple[str, str, str]


def result_to_dict(result: SimulationResult) -> Dict:
    """Serialize a result for the journal (metrics never cross runs)."""
    return {
        "app_name": result.app_name,
        "simulator_name": result.simulator_name,
        "gpu_name": result.gpu_name,
        "total_cycles": result.total_cycles,
        "wall_time_seconds": result.wall_time_seconds,
        "profile_seconds": result.profile_seconds,
        "kernels": [
            {
                "name": kernel.name,
                "start_cycle": kernel.start_cycle,
                "end_cycle": kernel.end_cycle,
                "instructions": kernel.instructions,
            }
            for kernel in result.kernels
        ],
    }


def result_from_dict(payload: Dict) -> SimulationResult:
    try:
        return SimulationResult(
            app_name=payload["app_name"],
            simulator_name=payload["simulator_name"],
            gpu_name=payload["gpu_name"],
            total_cycles=payload["total_cycles"],
            kernels=[
                KernelResult(
                    name=kernel["name"],
                    start_cycle=kernel["start_cycle"],
                    end_cycle=kernel["end_cycle"],
                    instructions=kernel["instructions"],
                )
                for kernel in payload.get("kernels", ())
            ],
            metrics=None,
            wall_time_seconds=payload.get("wall_time_seconds", 0.0),
            profile_seconds=payload.get("profile_seconds", 0.0),
        )
    except (KeyError, TypeError) as exc:
        raise SimulationError(f"malformed journal record: {exc}") from exc


class JsonLinesJournal:
    """Append-only JSON-lines file with the journal durability contract.

    Subclasses set :attr:`KIND` (the header's ``journal`` field; empty
    accepts legacy headers without one) and implement :meth:`_ingest`
    to absorb one non-header record during load.
    """

    #: Value of the header's ``journal`` field ("" = legacy, unchecked).
    KIND = ""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self.header: Dict = {}
        self._handle = None
        #: Byte length of the valid line prefix; a torn trailing line
        #: (crash mid-append) past this point is truncated away before
        #: the first new append.
        self._valid_bytes: Optional[int] = None

    # ------------------------------------------------------------------
    # creation / loading

    @classmethod
    def create(cls, path: str, **header_fields) -> "JsonLinesJournal":
        """Create a fresh journal (atomic: header lands via rename)."""
        journal = cls(path)
        directory = os.path.dirname(os.path.abspath(journal.path)) or "."
        header = {"kind": "header", "version": JOURNAL_VERSION}
        if cls.KIND:
            header["journal"] = cls.KIND
        header.update(header_fields)
        fd, temp_path = tempfile.mkstemp(
            dir=directory, prefix=".journal-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(header, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, journal.path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise
        journal.header = header
        return journal

    @classmethod
    def load(cls, path: str) -> "JsonLinesJournal":
        """Open an existing journal, tolerating a torn trailing line."""
        journal = cls(path)
        if not os.path.exists(path):
            raise SimulationError(f"journal {path!r} does not exist")
        with open(path, "rb") as handle:
            raw = handle.read()
        lines = raw.decode("utf-8", errors="replace").splitlines(keepends=True)
        saw_header = False
        valid_bytes = 0
        for index, line in enumerate(lines):
            is_last = index == len(lines) - 1
            if not line.endswith("\n"):
                # Torn final write from a killed writer: even if it
                # happens to parse, the fsync contract only covers
                # complete lines — drop it and let a resume re-run it.
                break
            stripped = line.strip()
            if not stripped:
                valid_bytes += len(line.encode("utf-8"))
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError:
                if is_last:
                    break  # torn final write from a killed writer
                raise SimulationError(
                    f"journal {path!r} line {index + 1} is corrupt "
                    f"mid-file: {stripped[:60]!r}"
                )
            kind = record.get("kind")
            if not saw_header:
                if kind != "header":
                    raise SimulationError(
                        f"journal {path!r} has no header line"
                    )
                version = record.get("version")
                if version != JOURNAL_VERSION:
                    raise SimulationError(
                        f"journal {path!r} has version {version}, "
                        f"expected {JOURNAL_VERSION}"
                    )
                declared = record.get("journal", "")
                if cls.KIND and declared and declared != cls.KIND:
                    raise SimulationError(
                        f"journal {path!r} is a {declared!r} journal, "
                        f"not {cls.KIND!r}"
                    )
                journal.header = record
                saw_header = True
            else:
                journal._ingest(record)
            valid_bytes += len(line.encode("utf-8"))
        if not saw_header:
            raise SimulationError(f"journal {path!r} has no header line")
        journal._valid_bytes = valid_bytes
        return journal

    def _ingest(self, record: Dict) -> None:
        """Absorb one loaded non-header record (subclass hook)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # appends

    def append(self, record: Dict) -> None:
        """Durably append one record (flush + fsync before returning)."""
        line = json.dumps(record, sort_keys=True)
        if self._handle is None:
            if (self._valid_bytes is not None
                    and os.path.getsize(self.path) > self._valid_bytes):
                # Drop the torn trailing line a killed writer left behind
                # before building on the file.
                with open(self.path, "r+b") as repair:
                    repair.truncate(self._valid_bytes)
            self._handle = open(self.path, "a")
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonLinesJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class RunJournal(JsonLinesJournal):
    """Append-only record of completed simulation triples."""

    KIND = "run"

    def __init__(self, path: str) -> None:
        super().__init__(path)
        self._completed: Dict[TripleKey, SimulationResult] = {}
        self._attempts: Dict[TripleKey, int] = {}

    # ------------------------------------------------------------------
    # creation / loading

    @classmethod
    def create(
        cls,
        path: str,
        gpu_name: str = "",
        scale: str = "",
        config_hash: str = "",
        workload_hash: str = "",
    ) -> "RunJournal":
        """Create a fresh journal (atomic: header lands via rename).

        ``config_hash`` / ``workload_hash`` pin the invocation that owns
        this journal; resumes under a different configuration or
        workload are refused (see ``repro eval --resume``).
        """
        fields = {"gpu": gpu_name, "scale": scale}
        if config_hash:
            fields["config_hash"] = config_hash
        if workload_hash:
            fields["workload_hash"] = workload_hash
        return super().create(path, **fields)

    @classmethod
    def open(
        cls,
        path: str,
        gpu_name: str = "",
        scale: str = "",
        config_hash: str = "",
        workload_hash: str = "",
    ) -> "RunJournal":
        """Load ``path`` if it exists, else create it."""
        if os.path.exists(path):
            return cls.load(path)
        return cls.create(
            path, gpu_name=gpu_name, scale=scale,
            config_hash=config_hash, workload_hash=workload_hash,
        )

    def _ingest(self, record: Dict) -> None:
        if record.get("kind") == "result":
            result = result_from_dict(record["result"])
            key = (result.app_name, result.gpu_name, result.simulator_name)
            self._completed[key] = result
            self._attempts[key] = record.get("attempts", 1)

    # ------------------------------------------------------------------
    # queries

    def __len__(self) -> int:
        return len(self._completed)

    def __contains__(self, key: TripleKey) -> bool:
        return key in self._completed

    def has(self, app: str, gpu: str, simulator: str) -> bool:
        return (app, gpu, simulator) in self._completed

    def get(self, app: str, gpu: str, simulator: str) -> Optional[SimulationResult]:
        return self._completed.get((app, gpu, simulator))

    def attempts(self, app: str, gpu: str, simulator: str) -> int:
        return self._attempts.get((app, gpu, simulator), 0)

    def completed(self) -> Iterator[Tuple[TripleKey, SimulationResult]]:
        return iter(sorted(self._completed.items()))

    # ------------------------------------------------------------------
    # appends

    def record(self, result: SimulationResult, attempts: int = 1) -> None:
        """Durably append one completed triple (flush + fsync)."""
        key = (result.app_name, result.gpu_name, result.simulator_name)
        if key in self._completed:
            return  # idempotent: resumes may re-deliver journaled work
        self.append({
            "kind": "result",
            "attempts": attempts,
            "result": result_to_dict(result),
        })
        self._completed[key] = result
        self._attempts[key] = attempts
