"""Job execution: the function the service hands to the Supervisor.

Lives at module level (not a closure) so pooled Supervisor workers can
pickle it across process boundaries — the same constraint the sweep
driver's tasks obey.  Each execution rebuilds everything from the
request's value form (app name, scale, config dict): workers share no
in-memory state with the server, which is what makes a crashed worker
retryable and a crashed *server* recoverable from the journal alone.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ConfigError, ServeError
from repro.frontend.config import GPUConfig
from repro.frontend.config_io import gpu_config_from_dict
from repro.frontend.presets import get_preset
from repro.resilience.journal import result_to_dict
from repro.simulators.accel_like import AccelSimLike
from repro.simulators.interval import IntervalSimulator
from repro.simulators.swift_analytic import SwiftSimAnalytic
from repro.simulators.swift_basic import SwiftSimBasic
from repro.simulators.swift_memory import SwiftSimMemory
from repro.tracegen.suites import make_app

#: Simulators the service will execute.  Mirrors the CLI registry; the
#: serve layer keeps its own copy so workers never import the CLI.
SIMULATORS: Dict[str, type] = {
    "accel-like": AccelSimLike,
    "swift-basic": SwiftSimBasic,
    "swift-memory": SwiftSimMemory,
    "swift-analytic": SwiftSimAnalytic,
    "interval": IntervalSimulator,
}


def resolve_gpu(config: Optional[Dict], gpu_preset: str) -> GPUConfig:
    """The request's GPU: an explicit config dict, else a preset."""
    if config is not None:
        return gpu_config_from_dict(config)
    return get_preset(gpu_preset)


def execute_job(
    app_name: str,
    scale: str,
    config: Optional[Dict],
    gpu_preset: str,
    simulator_name: str,
) -> Dict:
    """Run one job to completion and return the journal-form result.

    Returns a plain dict (:func:`~repro.resilience.journal.result_to_dict`
    form) rather than a ``SimulationResult`` so the payload crosses the
    worker pipe, the journal, and the store without re-serialization.
    """
    simulator_cls = SIMULATORS.get(simulator_name)
    if simulator_cls is None:
        raise ConfigError(
            f"unknown simulator {simulator_name!r}; "
            f"known: {sorted(SIMULATORS)}"
        )
    gpu = resolve_gpu(config, gpu_preset)
    app = make_app(app_name, scale=scale)
    result = simulator_cls(gpu).simulate(app)
    return result_to_dict(result)


def validate_result_payload(payload: Dict) -> Dict:
    """Reject worker payloads that are not a result dict (e.g. chaos
    corruption) before they reach the store."""
    if not isinstance(payload, dict) or "total_cycles" not in payload:
        raise ServeError(f"worker returned a non-result payload: "
                         f"{str(payload)[:80]!r}")
    return payload
