"""Shard plans and cross-shard channels for the parallel engine.

The sharded engine (:mod:`repro.sim.parallel`) needs three things this
module provides:

* a :class:`ShardPlan` — the decomposition contract: which shard owns
  each module.  The production plan is built straight from the static
  partition manifest (``repro-partition/v1``, see
  :mod:`repro.analyze.partition`), so the runtime decomposition is
  exactly the one the SH rule family verified to have zero
  unsynchronized cross-shard writes;
* :class:`ShardChannel` / :class:`ChannelEndpoint` — the only legal
  cross-shard communication primitive in windowed mode: a latency-``L``
  message queue whose receive side is an ordinary
  :class:`~repro.sim.engine.ClockedModule`, so deliveries occur at
  exact cycles under the normal engine ordering rules (and therefore
  identically in serial and sharded runs);
* :func:`derive_lookahead` — the conservative window width, derived
  from the NoC latency that separates the SM side from the memory side
  in the paper's decomposition.

Channel transcripts reuse the ``REPROCKPT1`` framing discipline
(magic + JSON meta line + per-record ``<len> <sha256>`` frames, torn
trailing records tolerated) so a killed worker can never leave a
transcript that replays differently from what was actually sent.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError, SimulationError
from repro.sim.engine import ClockedModule
from repro.sim.module import ModelLevel, Module

#: Magic + format version for channel transcript files.
TRANSCRIPT_MAGIC = b"REPROSHCH1\n"

#: Component-name split used by the two-way fallback plan; mirrors the
#: SM-side / memory-side frozensets in :mod:`repro.analyze.partition`.
SM_SIDE_COMPONENTS = frozenset({
    "sm", "warp_scheduler", "alu_pipeline", "ldst_unit", "shared_memory",
    "frontend", "operand_collector", "block_scheduler",
})
MEM_SIDE_COMPONENTS = frozenset({"memory", "noc", "cache", "dram"})


@dataclass(frozen=True)
class CrossShardEdge:
    """One declared cross-shard port edge from the manifest."""

    caller: str
    callee: str
    target: str
    from_shard: str
    to_shard: str

    def key(self) -> str:
        return f"{self.caller}.{self.callee}->{self.target}"


class ShardPlan:
    """Maps every module of a simulation onto a named shard.

    Resolution order for :meth:`shard_for_module`:

    1. an explicit per-module-name assignment (``overrides``);
    2. the module's class name (walking the MRO, so subclasses inherit
       their base class's shard — the manifest lists concrete classes);
    3. the module's ``component`` attribute;
    4. the plan's ``fallback`` shard (raises if the plan has none).

    Plans are deliberately dumb, picklable data: the sharded engine and
    the multiprocess runner both carry them across process boundaries.
    """

    def __init__(
        self,
        name: str,
        shards: Sequence[str],
        *,
        by_class: Optional[Mapping[str, str]] = None,
        by_component: Optional[Mapping[str, str]] = None,
        overrides: Optional[Mapping[str, str]] = None,
        cross_edges: Sequence[CrossShardEdge] = (),
        fallback: Optional[str] = None,
        source: str = "explicit",
    ) -> None:
        if not shards:
            raise ConfigError("a shard plan needs at least one shard")
        seen = set()
        ordered: List[str] = []
        for shard in shards:
            if shard not in seen:
                seen.add(shard)
                ordered.append(shard)
        self.name = name
        self.shards: Tuple[str, ...] = tuple(ordered)
        self.by_class: Dict[str, str] = dict(by_class or {})
        self.by_component: Dict[str, str] = dict(by_component or {})
        self.overrides: Dict[str, str] = dict(overrides or {})
        self.cross_edges: Tuple[CrossShardEdge, ...] = tuple(cross_edges)
        self.fallback = fallback
        self.source = source
        for mapping in (self.by_class, self.by_component, self.overrides):
            for key, shard in mapping.items():
                if shard not in seen:
                    raise ConfigError(
                        f"shard plan {name!r}: {key!r} assigned to unknown "
                        f"shard {shard!r}"
                    )
        if fallback is not None and fallback not in seen:
            raise ConfigError(
                f"shard plan {name!r}: fallback shard {fallback!r} is not "
                f"one of its shards"
            )

    # ------------------------------------------------------------------

    def shard_for_module(self, module: Module) -> str:
        """The shard that owns ``module`` (see class docstring for order)."""
        return self.shard_for(
            name=module.name,
            class_names=[klass.__name__ for klass in type(module).__mro__],
            component=module.component,
        )

    def shard_for(
        self,
        name: Optional[str] = None,
        class_names: Sequence[str] = (),
        component: Optional[str] = None,
    ) -> str:
        """Low-level resolver for callers that know a module's identity
        before the instance exists (the simulator assembles port proxies
        around references it hands to constructors)."""
        if name is not None:
            shard = self.overrides.get(name)
            if shard is not None:
                return shard
        for klass in class_names:
            shard = self.by_class.get(klass)
            if shard is not None:
                return shard
        if component is not None:
            shard = self.by_component.get(component)
            if shard is not None:
                return shard
        if self.fallback is not None:
            return self.fallback
        raise ConfigError(
            f"shard plan {self.name!r} does not place module "
            f"{name!r} (classes {list(class_names)!r}, component "
            f"{component!r}) and has no fallback shard"
        )

    def describe(self) -> Dict[str, object]:
        """JSON-able summary (CLI/bench artifacts)."""
        return {
            "name": self.name,
            "source": self.source,
            "shards": list(self.shards),
            "cross_edges": [edge.key() for edge in self.cross_edges],
            "fallback": self.fallback,
        }

    # ------------------------------------------------------------------
    # constructors

    @classmethod
    def from_manifest(
        cls,
        manifest: Mapping[str, object],
        *,
        name: str = "manifest",
        fallback: Optional[str] = None,
    ) -> "ShardPlan":
        """Build the production plan from a ``repro-partition/v1`` dict.

        The manifest's shard list becomes the shard set, its per-shard
        class lists become the class map, and its components double as a
        component map for classes the static analyzer never saw (e.g.
        test doubles that declare a known ``component``).  Callers that
        want stale-manifest protection should obtain ``manifest`` via
        :func:`repro.analyze.partition.load_manifest`.
        """
        shards_doc = manifest.get("shards")
        if not isinstance(shards_doc, list) or not shards_doc:
            raise ConfigError("partition manifest has no shards")
        shard_names: List[str] = []
        by_class: Dict[str, str] = {}
        by_component: Dict[str, str] = {}
        for entry in shards_doc:
            shard = str(entry["name"])
            shard_names.append(shard)
            for klass in entry.get("classes", []):
                by_class[str(klass)] = shard
            for component in entry.get("components", []):
                by_component.setdefault(str(component), shard)
        edges = []
        for doc in manifest.get("cross_shard_edges", []):
            edges.append(CrossShardEdge(
                caller=str(doc.get("caller", "?")),
                callee=str(doc.get("callee", "?")),
                target=str(doc.get("target", "?")),
                from_shard=str(doc.get("from_shard", "?")),
                to_shard=str(doc.get("to_shard", "?")),
            ))
        return cls(
            name,
            shard_names,
            by_class=by_class,
            by_component=by_component,
            cross_edges=edges,
            fallback=fallback,
            source="manifest",
        )

    @classmethod
    def two_way(cls, *, name: str = "two-way") -> "ShardPlan":
        """The coarse SM-side / memory-side split, by component name.

        Useful as the minimal non-trivial decomposition (2-shard golden
        runs) and as a fallback when no manifest is on disk.
        """
        by_component = {c: "sm" for c in SM_SIDE_COMPONENTS}
        by_component.update({c: "memory" for c in MEM_SIDE_COMPONENTS})
        return cls(
            name,
            ("sm", "memory"),
            by_component=by_component,
            fallback="sm",
            source="two-way",
        )

    @classmethod
    def explicit(
        cls,
        assignment: Mapping[str, str],
        *,
        name: str = "explicit",
        fallback: Optional[str] = None,
    ) -> "ShardPlan":
        """A plan from an explicit module-name -> shard mapping (tests)."""
        shards = []
        for shard in assignment.values():
            if shard not in shards:
                shards.append(shard)
        if fallback is not None and fallback not in shards:
            shards.append(fallback)
        return cls(
            name, shards, overrides=assignment, fallback=fallback,
            source="explicit",
        )


def derive_lookahead(config: object) -> int:
    """Conservative lookahead window width for ``config``, in cycles.

    The decomposition's cross-shard edges are the SM-side <-> memory-side
    port calls; the minimum latency any message needs to cross that
    boundary is one NoC traversal, so the NoC latency bounds how far a
    shard can safely run ahead without observing the other side.
    Clamped to >= 1 (a zero-latency NoC degenerates to lockstep).
    """
    noc = getattr(config, "noc", None)
    latency = getattr(noc, "latency", 1)
    try:
        latency = int(latency)
    except (TypeError, ValueError):
        latency = 1
    return max(1, latency)


# ----------------------------------------------------------------------
# channels


class ShardChannel:
    """An ordered, latency-``L`` message queue between two shards.

    A message sent at cycle ``c`` becomes visible to the receiving shard
    at exactly ``c + latency``; with ``latency >= lookahead`` every
    message sent inside a window ``[T, T + lookahead)`` delivers at or
    after the window end, which is what makes windows independently
    executable.  Messages deliver in ``(deliver_cycle, send_seq)``
    order — the same total order a serial run would observe.
    """

    def __init__(
        self,
        name: str,
        latency: int,
        *,
        src_shard: str = "?",
        dst_shard: str = "?",
        transcript: Optional["TranscriptWriter"] = None,
    ) -> None:
        if latency < 1:
            raise ConfigError(
                f"channel {name!r}: latency must be >= 1 (got {latency}); "
                f"zero-latency cross-shard edges cannot be windowed"
            )
        self.name = name
        self.latency = latency
        self.src_shard = src_shard
        self.dst_shard = dst_shard
        self.transcript = transcript
        self.endpoint: Optional["ChannelEndpoint"] = None
        self.sent = 0
        self.delivered = 0
        self._queue: List[Tuple[int, int, object]] = []
        self._seq = 0
        self._last_send = -1
        self._wake = None  # callable(deliver_cycle) or None (buffered)

    # -- send side ------------------------------------------------------

    def send(self, payload: object, cycle: int) -> int:
        """Enqueue ``payload`` at ``cycle``; returns the delivery cycle.

        Send cycles must be non-decreasing (the engine only moves
        forward), which keeps ``(deliver, seq)`` a true total order.
        """
        if cycle < self._last_send:
            raise SimulationError(
                f"channel {self.name!r}: send at cycle {cycle} after a send "
                f"at {self._last_send} (time ran backwards)"
            )
        self._last_send = cycle
        deliver = cycle + self.latency
        heapq.heappush(self._queue, (deliver, self._seq, payload))
        if self.transcript is not None:
            self.transcript.record(self.name, cycle, deliver, self._seq, payload)
        self._seq += 1
        self.sent += 1
        if self._wake is not None:
            self._wake(deliver)
        return deliver

    def inject(self, deliver: int, seq: int, payload: object) -> None:
        """Insert a message with an explicit ``(deliver, seq)`` key.

        Used by the multiprocess runner (boundary-exchanged messages keep
        their sender-side sequence numbers) and by transcript replay.
        """
        heapq.heappush(self._queue, (deliver, seq, payload))
        self.sent += 1
        if self._wake is not None:
            self._wake(deliver)

    # -- receive side ---------------------------------------------------

    def bind_wakeup(self, wake) -> None:
        """Route sends to ``wake(deliver_cycle)`` — serial/lockstep mode,
        where the receiving engine can be woken immediately."""
        self._wake = wake

    def unbind(self) -> None:
        """Buffered mode (windowed runs): deliveries are armed at window
        boundaries by the coordinator, not per send."""
        self._wake = None

    def next_delivery(self) -> Optional[int]:
        return self._queue[0][0] if self._queue else None

    def pending(self) -> int:
        return len(self._queue)

    def pop_due(self, cycle: int) -> List[object]:
        """All payloads with ``deliver <= cycle``, in delivery order."""
        due: List[object] = []
        queue = self._queue
        while queue and queue[0][0] <= cycle:
            due.append(heapq.heappop(queue)[2])
        self.delivered += len(due)
        return due

    def drain(self) -> List[Tuple[int, int, object]]:
        """Remove and return every queued ``(deliver, seq, payload)``.

        The multiprocess runner drains the send-side stub at window
        boundaries and ships the messages to the owning worker.
        """
        out = sorted(self._queue)
        self._queue = []
        return out

    def __getstate__(self) -> Dict[str, object]:
        # Wake callbacks are bound closures over a live engine and the
        # transcript holds an open file handle; neither crosses pickle
        # boundaries (checkpoints, worker processes).  Receivers re-bind.
        state = dict(self.__dict__)
        state["_wake"] = None
        state["transcript"] = None
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)

    def __repr__(self) -> str:
        return (
            f"<ShardChannel {self.name!r} L={self.latency} "
            f"{self.src_shard}->{self.dst_shard} pending={self.pending()}>"
        )


class ChannelEndpoint(ClockedModule):
    """The receive side of a :class:`ShardChannel`, as a clocked module.

    Making delivery a normal engine event is what buys bit-equivalence:
    the endpoint is registered with a globally-unique rank like any
    other module, so "deliver the message, run the handler" happens at
    the same ``(cycle, rank)`` slot in serial, lockstep, and windowed
    runs alike.  The handler may return a wake-request cycle for the
    connected target module (e.g. "new work arrived, tick me next
    cycle"), which the endpoint forwards through the owning engine.
    """

    component = "shard_channel"
    level = ModelLevel.CYCLE_ACCURATE

    def __init__(self, channel: ShardChannel, name: Optional[str] = None) -> None:
        super().__init__(name or f"{channel.name}.endpoint")
        self.channel = channel
        channel.endpoint = self
        self.handler = None
        self.target: Optional[ClockedModule] = None
        self._engine = None

    def connect(self, target: ClockedModule, handler=None) -> None:
        """Deliver into ``target`` (default handler: ``target.on_message``)."""
        self.target = target
        self.handler = handler if handler is not None else target.on_message

    def attach_engine(self, engine) -> None:
        self._engine = engine

    def tick(self, cycle: int) -> Optional[int]:
        for payload in self.channel.pop_due(cycle):
            self.counters.add("delivered")
            wake_at = self.handler(payload, cycle) if self.handler else None
            if (
                wake_at is not None
                and self._engine is not None
                and self.target is not None
            ):
                self._engine.wake(self.target, wake_at)
        return self.channel.next_delivery()

    def is_done(self) -> bool:
        return self.channel.pending() == 0


# ----------------------------------------------------------------------
# transcripts (REPROSHCH1)


@dataclass(frozen=True)
class TranscriptRecord:
    """One recorded send: enough to replay it bit-exactly."""

    channel: str
    send_cycle: int
    deliver_cycle: int
    seq: int
    payload: object


class TranscriptWriter:
    """Appends framed channel records to a transcript file.

    Frame discipline mirrors ``REPROCKPT1``: each record is one
    ``<len> <sha256>`` header line followed by exactly ``len`` pickle
    bytes.  Records are flushed whole, so a kill can only ever truncate
    the *trailing* record — which the reader detects and drops.
    """

    def __init__(self, path: Path, meta: Optional[Dict[str, object]] = None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "wb")
        self._handle.write(TRANSCRIPT_MAGIC)
        meta_line = json.dumps(dict(meta or {}), sort_keys=True).encode("utf-8")
        self._handle.write(meta_line + b"\n")
        self._handle.flush()

    def record(
        self, channel: str, send_cycle: int, deliver_cycle: int,
        seq: int, payload: object,
    ) -> None:
        blob = pickle.dumps(
            (channel, send_cycle, deliver_cycle, seq, payload),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        digest = hashlib.sha256(blob).hexdigest()
        self._handle.write(f"{len(blob)} {digest}\n".encode("ascii"))
        self._handle.write(blob)
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TranscriptWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class Transcript:
    """A loaded transcript: meta, intact records, and a torn-tail flag."""

    meta: Dict[str, object]
    records: List[TranscriptRecord] = field(default_factory=list)
    torn: bool = False

    def replay_into(self, channels: Mapping[str, ShardChannel]) -> int:
        """Inject every record into its channel; returns count injected.

        Replayed messages keep their recorded ``(deliver, seq)`` keys, so
        a receiver driven purely from a transcript observes the identical
        delivery schedule the original run produced.
        """
        injected = 0
        for rec in self.records:
            channel = channels.get(rec.channel)
            if channel is None:
                continue
            channel.inject(rec.deliver_cycle, rec.seq, rec.payload)
            injected += 1
        return injected


def load_transcript(path: Path) -> Transcript:
    """Read a transcript, tolerating a torn trailing record.

    A file truncated or corrupted mid-record (worker killed during a
    write) yields every intact prefix record with ``torn=True`` — the
    same newest-intact fallback discipline the checkpoint reader uses.
    A bad magic line is a caller bug and raises
    :class:`repro.errors.SimulationError`.
    """
    raw = Path(path).read_bytes()
    if not raw.startswith(TRANSCRIPT_MAGIC):
        raise SimulationError(
            f"{path}: not a channel transcript (bad magic)"
        )
    rest = raw[len(TRANSCRIPT_MAGIC):]
    meta_end = rest.find(b"\n")
    if meta_end < 0:
        return Transcript(meta={}, records=[], torn=True)
    try:
        meta = json.loads(rest[:meta_end].decode("utf-8"))
        if not isinstance(meta, dict):
            raise ValueError("meta is not an object")
    except (UnicodeDecodeError, ValueError):
        return Transcript(meta={}, records=[], torn=True)
    rest = rest[meta_end + 1:]
    records: List[TranscriptRecord] = []
    torn = False
    while rest:
        frame_end = rest.find(b"\n")
        if frame_end < 0:
            torn = True
            break
        frame = rest[:frame_end].decode("ascii", errors="replace").split()
        if len(frame) != 2:
            torn = True
            break
        try:
            length = int(frame[0])
        except ValueError:
            torn = True
            break
        blob = rest[frame_end + 1: frame_end + 1 + length]
        if len(blob) != length:
            torn = True
            break
        if hashlib.sha256(blob).hexdigest() != frame[1]:
            torn = True
            break
        try:
            channel, send_cycle, deliver_cycle, seq, payload = pickle.loads(blob)
        except Exception:
            torn = True
            break
        records.append(TranscriptRecord(
            channel=channel, send_cycle=send_cycle,
            deliver_cycle=deliver_cycle, seq=seq, payload=payload,
        ))
        rest = rest[frame_end + 1 + length:]
    return Transcript(meta=meta, records=records, torn=torn)
