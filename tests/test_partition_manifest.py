"""Stale-manifest protection for the partition loader.

The PDES core consumes the partition manifest as its decomposition
input and trusts its cross-shard edge list completely, so a manifest
generated from any *other* source tree must fail closed with the typed
:class:`repro.errors.PartitionStale` — never load silently.
"""

import json
from pathlib import Path

import pytest

from repro.analyze.partition import (
    MANIFEST_FORMAT,
    default_source_root,
    load_manifest,
    tree_fingerprint,
    write_manifest,
)
from repro.errors import AnalysisError, PartitionStale
from repro.sim.shard import ShardPlan


def manifest_doc(fingerprint):
    doc = {
        "format": MANIFEST_FORMAT,
        "analyzer_version": 1,
        "shards": [
            {"name": "sm", "classes": ["SMCore"], "components": ["sm"]},
            {"name": "memory", "classes": ["NoC"], "components": ["noc"]},
        ],
        "cross_shard_edges": [],
        "unsynchronized_writes": [],
        "unsynchronized_reads": [],
        "summary": {"shards": 2},
    }
    if fingerprint is not None:
        doc["source"] = {"fingerprint": fingerprint, "files": 1}
    return doc


def test_stale_manifest_fails_closed(tmp_path):
    path = tmp_path / "manifest.json"
    write_manifest(manifest_doc("0" * 64), str(path))
    with pytest.raises(PartitionStale) as excinfo:
        load_manifest(str(path))
    assert excinfo.value.expected_fingerprint == "0" * 64
    assert excinfo.value.actual_fingerprint
    assert "regenerate" in str(excinfo.value)


def test_manifest_without_fingerprint_is_treated_as_stale(tmp_path):
    path = tmp_path / "manifest.json"
    write_manifest(manifest_doc(None), str(path))
    with pytest.raises(PartitionStale):
        load_manifest(str(path))


def test_allow_stale_bypasses_the_check_explicitly(tmp_path):
    path = tmp_path / "manifest.json"
    write_manifest(manifest_doc("0" * 64), str(path))
    manifest = load_manifest(str(path), allow_stale=True)
    assert manifest["summary"]["shards"] == 2


def test_current_fingerprint_loads(tmp_path):
    path = tmp_path / "manifest.json"
    write_manifest(manifest_doc(tree_fingerprint(default_source_root())),
                   str(path))
    manifest = load_manifest(str(path))
    plan = ShardPlan.from_manifest(manifest, fallback="sm")
    assert plan.shards == ("sm", "memory")
    assert plan.by_class["SMCore"] == "sm"


def test_wrong_format_is_an_analysis_error(tmp_path):
    path = tmp_path / "manifest.json"
    path.write_text(json.dumps({"format": "something-else/v9"}))
    with pytest.raises(AnalysisError):
        load_manifest(str(path))
    garbled = tmp_path / "garbled.json"
    garbled.write_text("{not json")
    with pytest.raises(AnalysisError):
        load_manifest(str(garbled))
    with pytest.raises(AnalysisError):
        load_manifest(str(tmp_path / "missing.json"))


def test_fingerprint_tracks_content_renames_and_deletions(tmp_path):
    tree = tmp_path / "tree"
    tree.mkdir()
    (tree / "a.py").write_text("x = 1\n")
    (tree / "b.py").write_text("y = 2\n")
    base = tree_fingerprint(tree)
    assert base == tree_fingerprint(tree)  # deterministic

    (tree / "a.py").write_text("x = 3\n")
    edited = tree_fingerprint(tree)
    assert edited != base

    (tree / "a.py").write_text("x = 1\n")
    assert tree_fingerprint(tree) == base  # reverting restores it

    (tree / "a.py").rename(tree / "c.py")
    assert tree_fingerprint(tree) != base

    (tree / "c.py").unlink()
    assert tree_fingerprint(tree) != base


def test_generated_manifest_roundtrips_through_the_loader(tmp_path):
    """End-to-end: the manifest the analyzer emits for the real source
    tree loads cleanly and yields the full production shard plan."""
    from repro.analyze.index import load_index
    from repro.analyze.partition import build_partition

    src = default_source_root()
    index = load_index([src], root=src)
    manifest = build_partition(index).manifest(index)
    path = tmp_path / "manifest.json"
    write_manifest(manifest, str(path))
    loaded = load_manifest(str(path))
    plan = ShardPlan.from_manifest(loaded, fallback=loaded["shards"][0]["name"])
    assert len(plan.shards) == loaded["summary"]["shards"]
    assert loaded["summary"]["unsynchronized_writes"] == 0
